//! Conservative parallel discrete-event simulation (the `lopc_sim::par`
//! engine).
//!
//! The node set is partitioned into contiguous blocks, one per **logical
//! process** (LP); each LP is a private `Core` — its own pending-event
//! queue (calendar or heap, chosen per LP by
//! [`Scheduler::auto_for_lp`]), its own nodes, its own clock. LPs
//! synchronize with a conservative windowing protocol in the
//! Chandy–Misra–Bryant family (synchronous variant, after the adevs
//! `ParSimulator` exemplar):
//!
//! 1. **Lookahead.** Every cross-node event is a message arrival paying at
//!    least [`lookahead`] time units of wire delay (`net_latency`, or the
//!    infimum of the latency distribution). An LP whose earliest pending
//!    event is at `t` therefore cannot affect another LP before `t + L`.
//! 2. **Null messages.** Each round, every LP posts that bound on each of
//!    its outbound channels — a promise carrying no payload, only time.
//! 3. **Safe window.** Each LP then processes every local event strictly
//!    below `min(min_j bound_j, M + 2L)`, where the first term is the
//!    minimum over its inbound channel bounds (covering *direct* future
//!    messages: one hop from an event already queued at a peer) and `M` is
//!    the global minimum next-event time (covering *transitive* ones: a
//!    peer that is empty now may still receive and then forward, paying at
//!    least two wire hops). Emitted cross-LP events are ferried over the
//!    channels and can, by construction, never arrive in an LP's past.
//!
//! Rounds repeat until the global minimum next-event time passes the
//! horizon (or the queues drain, in makespan mode). `L > 0` guarantees
//! every round advances the global clock by at least `L`, so the protocol
//! is deadlock-free; a zero-lookahead configuration (a latency distribution
//! that can sample 0) transparently falls back to the sequential engine.
//!
//! **Determinism.** Parallel runs are *bit-identical* to sequential ones —
//! same [`SimReport`], same cycle trace — for any LP count and any worker
//! count, because event outcomes never depend on the partition: every node
//! draws from its own counter-split RNG stream, event tie-breaks are keyed
//! by `(creating node, per-node counter)`, and reports are assembled in
//! node order (DESIGN.md §13). `tests/par_differential.rs` proves this
//! across random topologies × LP counts × thread counts × schedulers.
//!
//! # Example
//!
//! ```
//! use lopc_sim::{par, SimConfig, StopCondition, ThreadSpec};
//! use lopc_dist::ServiceTime;
//!
//! let cfg = SimConfig {
//!     p: 32,
//!     net_latency: 25.0,
//!     request_handler: ServiceTime::exponential(100.0),
//!     reply_handler: ServiceTime::exponential(100.0),
//!     threads: vec![ThreadSpec::worker(ServiceTime::exponential(500.0)); 32],
//!     protocol_processor: false,
//!     latency_dist: None,
//!     stop: StopCondition::CyclesPerThread { n: 10 },
//!     seed: 42,
//! };
//! let opts = par::ParOptions {
//!     lps: 4,
//!     threads: 2,
//!     ..Default::default()
//! };
//! let parallel = par::run_par(&cfg, &opts).unwrap();
//! let sequential = lopc_sim::run(&cfg).unwrap();
//! assert_eq!(parallel, sequential); // bit-identical, not approximately
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::config::{ConfigError, SimConfig, StopCondition, Time};
use crate::engine::{finalize_report, Core, Engine, Ev};
use crate::sched::Scheduler;
use crate::stats::SimReport;
use lopc_dist::Distribution;
use lopc_solver::steal::WorkQueue;

/// The conservative lookahead of a configuration: the minimum time any
/// cross-node interaction takes. Every inter-node event is a message
/// arrival delayed by the wire, so this is `net_latency` for constant
/// latency, or the infimum of the latency distribution
/// ([`Distribution::min_value`]) when wire times are sampled.
///
/// A zero lookahead (e.g. exponential wire times) means no LP can ever
/// promise anything about its future output and [`run_par`] falls back to
/// the sequential engine.
pub fn lookahead(cfg: &SimConfig) -> f64 {
    match &cfg.latency_dist {
        None => cfg.net_latency,
        Some(d) => d.min_value(),
    }
}

/// Options for [`run_par`]. `Default` (all zeros / `None`) sizes both the
/// LP count and the worker pool from the machine's available parallelism.
#[derive(Clone, Debug, Default)]
pub struct ParOptions {
    /// Number of logical processes to partition the nodes into (contiguous
    /// blocks of `p / lps` nodes). `0` picks the worker count (at least 2);
    /// values above `p` are clamped to `p`. `1` runs sequentially.
    pub lps: usize,
    /// OS worker threads driving the LPs (each claims LPs work-stealing
    /// style every phase). `0` picks the available parallelism; clamped to
    /// the LP count.
    pub threads: usize,
    /// Pending-event scheduler for every LP queue. `None` resolves like the
    /// sequential engine — the `LOPC_TEST_SCHEDULER` override if set, else
    /// adaptively via [`Scheduler::auto_for_lp`] on the *per-LP* share of
    /// the pending-event population.
    pub scheduler: Option<Scheduler>,
    /// Record the pooled per-cycle response-time trace
    /// ([`SimReport::cycle_trace`]), exactly as
    /// [`Engine::with_cycle_trace`] would.
    pub trace: bool,
}

/// One directed inter-LP channel: the null-message bound plus the payload
/// events in flight. Written by the source LP, read by the destination —
/// never both in the same phase, so the mutex is uncontended.
struct Channel {
    /// Promise: no future event on this channel carries `t` below this.
    bound: Time,
    msgs: Vec<Ev>,
}

/// Run the leader-reset closure between two barrier waits: every worker
/// arrives, exactly one runs `f`, every worker leaves after `f` finished.
fn sync(barrier: &Barrier, f: impl FnOnce()) {
    if barrier.wait().is_leader() {
        f();
    }
    barrier.wait();
}

#[inline]
fn load_time(a: &AtomicU64) -> Time {
    // Barriers order every store before every load; Relaxed suffices.
    f64::from_bits(a.load(Ordering::Relaxed))
}

/// Run one simulation on the conservative parallel engine.
///
/// Produces a report bit-identical to
/// `Engine::new(cfg)?.run_to_completion()` (plus the cycle trace when
/// `opts.trace` is set) for **any** `lps`/`threads` combination — the
/// partition and the worker pool are pure performance knobs. Falls back to
/// the sequential engine when the partition degenerates (`lps <= 1` after
/// clamping) or the configuration has zero lookahead.
pub fn run_par(cfg: &SimConfig, opts: &ParOptions) -> Result<SimReport, ConfigError> {
    cfg.validate()?;
    let la = lookahead(cfg);
    let threads_req = if opts.threads == 0 {
        lopc_solver::steal::worker_count(cfg.p)
    } else {
        opts.threads
    };
    let n = if opts.lps == 0 {
        threads_req.max(2)
    } else {
        opts.lps
    }
    .min(cfg.p);
    let threads = threads_req.clamp(1, n);

    if n <= 1 || la <= 0.0 {
        return run_sequential(cfg, opts.scheduler, opts.trace);
    }

    let scheduler = opts
        .scheduler
        .or_else(crate::validate::env_scheduler)
        .unwrap_or_else(|| Scheduler::auto_for_lp(cfg.pending_hint(), n));
    let horizon_end = match cfg.stop {
        StopCondition::Horizon { end, .. } => Some(end),
        StopCondition::CyclesPerThread { .. } => None,
    };

    // Contiguous balanced blocks: LP i owns nodes [i·p/n, (i+1)·p/n).
    let p = cfg.p;
    let bounds: Vec<usize> = (0..=n).map(|i| i * p / n).collect();
    let mut node_lp = vec![0usize; p];
    for i in 0..n {
        for slot in &mut node_lp[bounds[i]..bounds[i + 1]] {
            *slot = i;
        }
    }

    let shared = Arc::new(cfg.clone());
    let cores: Vec<Mutex<Core>> = (0..n)
        .map(|i| {
            Mutex::new(Core::new(
                shared.clone(),
                bounds[i],
                bounds[i + 1] - bounds[i],
                scheduler,
                opts.trace,
            ))
        })
        .collect();

    // channels[src · n + dst]; the diagonal is never used.
    let channels: Vec<Mutex<Channel>> = (0..n * n)
        .map(|_| {
            Mutex::new(Channel {
                bound: f64::INFINITY,
                msgs: Vec::new(),
            })
        })
        .collect();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(threads);
    // One claim queue per phase kind, leader-reset while the other drains.
    let qa = WorkQueue::new(n);
    let qb = WorkQueue::new(n);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                loop {
                    // Phase A: deliver ferried events, then advertise this
                    // round's null messages (next local event + lookahead).
                    while let Some(lp) = qa.claim() {
                        let mut core = cores[lp].lock().unwrap();
                        for src in 0..n {
                            if src == lp {
                                continue;
                            }
                            let mut ch = channels[src * n + lp].lock().unwrap();
                            for ev in ch.msgs.drain(..) {
                                core.receive(ev);
                            }
                        }
                        let nt = core.next_time();
                        next_times[lp].store(nt.to_bits(), Ordering::Relaxed);
                        for dst in 0..n {
                            if dst == lp {
                                continue;
                            }
                            channels[lp * n + dst].lock().unwrap().bound = nt + la;
                        }
                    }
                    sync(&barrier, || qb.reset());

                    // Global termination: every worker sees the same
                    // minimum (all stores happened before the barrier).
                    let m = next_times
                        .iter()
                        .map(load_time)
                        .fold(f64::INFINITY, f64::min);
                    let done = match horizon_end {
                        Some(end) => m > end,
                        None => m == f64::INFINITY,
                    };
                    if done {
                        break;
                    }

                    // Phase B: process the safe window, ferry the output.
                    while let Some(lp) = qb.claim() {
                        let mut core = cores[lp].lock().unwrap();
                        let mut safe = f64::INFINITY;
                        for src in 0..n {
                            if src == lp {
                                continue;
                            }
                            safe = safe.min(channels[src * n + lp].lock().unwrap().bound);
                        }
                        // The channel bounds only cover *direct* future
                        // messages (one inter-LP hop from an event already
                        // queued at `src`). A message can also reach this LP
                        // transitively — src receives first, then forwards —
                        // paying at least two wire hops beyond the global
                        // minimum next-event time. Without this cap an LP
                        // whose peers are all momentarily empty would see
                        // +inf bounds and run ahead of replies to its own
                        // requests.
                        let safe = safe.min(m + 2.0 * la);
                        core.process_until(safe);
                        for ev in core.take_outbox() {
                            let dst = node_lp[ev.node];
                            channels[lp * n + dst].lock().unwrap().msgs.push(ev);
                        }
                    }
                    sync(&barrier, || qa.reset());
                }
            });
        }
    });

    let cores: Vec<Core> = cores.into_iter().map(|m| m.into_inner().unwrap()).collect();
    Ok(finalize_report(cores))
}

/// The degenerate path: one LP (or zero lookahead) is just the sequential
/// engine with the same scheduler/trace resolution.
fn run_sequential(
    cfg: &SimConfig,
    scheduler: Option<Scheduler>,
    trace: bool,
) -> Result<SimReport, ConfigError> {
    let engine = match scheduler {
        Some(s) => Engine::with_scheduler(cfg.clone(), s)?,
        None => Engine::new(cfg.clone())?,
    };
    let engine = if trace {
        engine.with_cycle_trace()
    } else {
        engine
    };
    Ok(engine.run_to_completion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StopCondition, ThreadSpec};
    use lopc_dist::ServiceTime;

    fn base(p: usize, stop: StopCondition) -> SimConfig {
        SimConfig {
            p,
            net_latency: 25.0,
            request_handler: ServiceTime::exponential(100.0),
            reply_handler: ServiceTime::exponential(100.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(500.0)); p],
            protocol_processor: false,
            latency_dist: None,
            stop,
            seed: 4242,
        }
    }

    fn seq(cfg: &SimConfig, trace: bool) -> SimReport {
        let e = Engine::new(cfg.clone()).unwrap();
        let e = if trace { e.with_cycle_trace() } else { e };
        e.run_to_completion()
    }

    #[test]
    fn lookahead_contract_per_latency_family() {
        let mut cfg = base(4, StopCondition::CyclesPerThread { n: 1 });
        assert_eq!(lookahead(&cfg), 25.0, "constant wire = net_latency");
        cfg.latency_dist = Some(ServiceTime::uniform(15.0, 35.0));
        assert_eq!(lookahead(&cfg), 15.0, "uniform wire = lower endpoint");
        cfg.latency_dist = Some(ServiceTime::exponential(25.0));
        assert_eq!(lookahead(&cfg), 0.0, "exponential wire has no lookahead");
    }

    /// The headline determinism guarantee, unit-test sized: repartitioning
    /// the same configuration across 1..=8 LPs (including a count that does
    /// not divide `p`) changes nothing — not one bit of the report.
    #[test]
    fn repartitioning_is_invisible() {
        for stop in [
            StopCondition::CyclesPerThread { n: 20 },
            StopCondition::Horizon {
                warmup: 2_000.0,
                end: 20_000.0,
            },
        ] {
            let cfg = base(10, stop);
            let reference = seq(&cfg, true);
            for lps in [1, 2, 3, 4, 8] {
                let opts = ParOptions {
                    lps,
                    threads: 2,
                    trace: true,
                    ..Default::default()
                };
                let par = run_par(&cfg, &opts).unwrap();
                assert_eq!(par, reference, "lps = {lps}, stop = {stop:?}");
            }
        }
    }

    /// Worker-pool size is a pure performance knob.
    #[test]
    fn thread_count_is_invisible() {
        let cfg = base(
            8,
            StopCondition::Horizon {
                warmup: 1_000.0,
                end: 15_000.0,
            },
        );
        let reference = seq(&cfg, false);
        for threads in [1, 2, 3, 4, 8] {
            let opts = ParOptions {
                lps: 4,
                threads,
                ..Default::default()
            };
            assert_eq!(
                run_par(&cfg, &opts).unwrap(),
                reference,
                "threads = {threads}"
            );
        }
    }

    /// Sampled wire times with a positive infimum keep a positive lookahead;
    /// the parallel path must still match bit-for-bit.
    #[test]
    fn sampled_latency_with_positive_floor_matches() {
        let mut cfg = base(6, StopCondition::CyclesPerThread { n: 15 });
        cfg.latency_dist = Some(ServiceTime::uniform(15.0, 35.0));
        let reference = seq(&cfg, false);
        let opts = ParOptions {
            lps: 3,
            threads: 2,
            ..Default::default()
        };
        assert_eq!(run_par(&cfg, &opts).unwrap(), reference);
    }

    /// Zero lookahead falls back to the sequential engine (trivially equal,
    /// but the path must exist and not deadlock in round logic).
    #[test]
    fn zero_lookahead_falls_back_to_sequential() {
        let mut cfg = base(6, StopCondition::CyclesPerThread { n: 10 });
        cfg.latency_dist = Some(ServiceTime::exponential(25.0));
        let reference = seq(&cfg, false);
        let opts = ParOptions {
            lps: 4,
            threads: 4,
            ..Default::default()
        };
        assert_eq!(run_par(&cfg, &opts).unwrap(), reference);
    }

    /// Tiny per-LP queues (one node per LP, a handful of events each) walk
    /// the calendar queue's low-occupancy edge paths; force Calendar on
    /// every LP and cross-check against both the heap-par and sequential
    /// runs. Constant service times make the schedule tie-heavy on top.
    #[test]
    fn per_lp_calendar_small_queues_match_heap_and_sequential() {
        let mut cfg = base(6, StopCondition::CyclesPerThread { n: 25 });
        cfg.request_handler = ServiceTime::constant(100.0);
        cfg.reply_handler = ServiceTime::constant(100.0);
        for t in &mut cfg.threads {
            t.work = Some(ServiceTime::constant(500.0));
            t.fanout = 3;
        }
        let reference = seq(&cfg, false);
        for scheduler in [Scheduler::Calendar, Scheduler::BinaryHeap] {
            let opts = ParOptions {
                lps: 6, // one node per LP
                threads: 2,
                scheduler: Some(scheduler),
                ..Default::default()
            };
            assert_eq!(
                run_par(&cfg, &opts).unwrap(),
                reference,
                "scheduler = {scheduler:?}"
            );
        }
    }

    /// Defaults: lps/threads resolve from the machine, clamped sanely, and
    /// oversubscription (more LPs than nodes, more threads than LPs) clamps
    /// instead of panicking.
    #[test]
    fn oversubscribed_options_clamp() {
        let cfg = base(4, StopCondition::CyclesPerThread { n: 5 });
        let reference = seq(&cfg, false);
        let opts = ParOptions {
            lps: 64,     // > p: clamped to 4
            threads: 64, // > lps: clamped
            ..Default::default()
        };
        assert_eq!(run_par(&cfg, &opts).unwrap(), reference);
        assert_eq!(
            run_par(&cfg, &ParOptions::default()).unwrap(),
            reference,
            "all-default options must also match"
        );
    }

    /// Client-server topologies put pure servers (no initial events) on
    /// some LPs: their queues start empty and fill only through inter-LP
    /// channels.
    #[test]
    fn server_only_lps_fill_through_channels() {
        let mut cfg = base(
            8,
            StopCondition::Horizon {
                warmup: 1_000.0,
                end: 12_000.0,
            },
        );
        cfg.threads[0] = ThreadSpec::server();
        cfg.threads[1] = ThreadSpec::server();
        for t in cfg.threads.iter_mut().skip(2) {
            t.dest = crate::routing::DestChooser::UniformAmong(vec![0, 1]);
        }
        let reference = seq(&cfg, true);
        // lps = 4 puts nodes {0,1} (both servers) alone on LP 0.
        let opts = ParOptions {
            lps: 4,
            threads: 3,
            trace: true,
            ..Default::default()
        };
        assert_eq!(run_par(&cfg, &opts).unwrap(), reference);
        assert!(reference.nodes[0].requests_served > 0);
    }
}
