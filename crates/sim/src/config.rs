//! Simulation configuration: the architectural and algorithmic parameters of
//! Chapter 2 and 3 of the thesis, in executable form.

use crate::routing::DestChooser;
use lopc_dist::ServiceTime;

/// Index of a processing node (0-based).
pub type NodeId = usize;

/// Upper bound on `p` (2²⁰ nodes): the engine packs the creating node's id
/// into the high bits of each event's 64-bit tie-break key so that event
/// ordering is independent of how nodes are partitioned into logical
/// processes (see DESIGN.md §13), which leaves 20 bits for the node id and
/// 44 bits for the per-node creation counter.
pub const MAX_NODES: usize = 1 << 20;

/// Simulated time in cycles.
pub type Time = f64;

/// What one node's computation thread does.
#[derive(Clone, Debug)]
pub struct ThreadSpec {
    /// Work between requests (`W` in the model). `None` makes the node a
    /// pure server: its thread never computes and never issues requests
    /// (the §6 work-pile server role).
    pub work: Option<ServiceTime>,
    /// How the thread picks the destination of each request.
    pub dest: DestChooser,
    /// Handler visits per request: 1 is a plain request/reply; `h > 1`
    /// forwards the request `h−1` times before the final node replies
    /// (Appendix A multi-hop).
    pub hops: u32,
    /// Requests issued per cycle (fork-join fan-out): the thread sends
    /// `fanout` requests back-to-back and blocks until *all* replies have
    /// been handled. `1` is the blocking model of the thesis; larger values
    /// exercise the §7 "non-blocking communication" extension.
    pub fanout: u32,
}

impl ThreadSpec {
    /// Standard worker thread: `work` between requests, one hop, uniform
    /// random destination.
    pub fn worker(work: ServiceTime) -> Self {
        ThreadSpec {
            work: Some(work),
            dest: DestChooser::UniformOther,
            hops: 1,
            fanout: 1,
        }
    }

    /// Pure server thread (never computes, never requests).
    pub fn server() -> Self {
        ThreadSpec {
            work: None,
            dest: DestChooser::UniformOther,
            hops: 1,
            fanout: 1,
        }
    }

    /// True if this thread issues requests.
    pub fn is_active(&self) -> bool {
        self.work.is_some()
    }
}

/// When the simulation stops and what is measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopCondition {
    /// Steady-state measurement: statistics cover cycles *starting* in
    /// `[warmup, end]` and time-averages over the same window; threads cycle
    /// indefinitely.
    Horizon {
        /// Start of the measurement window.
        warmup: Time,
        /// End of the simulation.
        end: Time,
    },
    /// Makespan measurement: every active thread performs exactly `n`
    /// compute/request cycles (the `n` of §3); the report's `makespan` is
    /// the completion time of the last cycle. All cycles are measured.
    CyclesPerThread {
        /// Cycles per active thread.
        n: u64,
    },
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of nodes (`P`).
    pub p: usize,
    /// Constant network latency (`St`/`L`); the interconnect is
    /// contention-free (§2).
    pub net_latency: f64,
    /// Service-time distribution of request handlers (mean `So`).
    pub request_handler: ServiceTime,
    /// Service-time distribution of reply handlers (mean `So`).
    pub reply_handler: ServiceTime,
    /// Per-node thread behaviour; must have length `p`.
    pub threads: Vec<ThreadSpec>,
    /// Run handlers on a dedicated per-node protocol processor instead of
    /// interrupting the CPU (§5.1 "Modeling Shared Memory").
    pub protocol_processor: bool,
    /// Optional per-message wire-time distribution. `None` means every
    /// message takes exactly `net_latency`; `Some(d)` samples each wire time
    /// from `d`, whose mean must equal `net_latency` (§5.2 argues that in a
    /// contention-free network only the average wire time matters — this
    /// knob lets the tests verify that claim).
    pub latency_dist: Option<ServiceTime>,
    /// Stop condition / measurement mode.
    pub stop: StopCondition,
    /// RNG seed; equal seeds give bit-identical runs — independent of the
    /// pending-event [`Scheduler`](crate::sched::Scheduler), of how many
    /// threads [`run_replications`](crate::runner::run_replications) uses,
    /// and of the LP partition / worker count of the parallel engine
    /// ([`par::run_par`](crate::par::run_par)): every node draws from its
    /// own counter-split RNG stream derived from this seed.
    pub seed: u64,
}

/// Configuration validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than two nodes.
    TooFewNodes,
    /// More than [`MAX_NODES`] nodes (the event-key packing limit).
    TooManyNodes,
    /// `threads.len() != p`.
    ThreadCountMismatch,
    /// Negative or non-finite network latency.
    BadLatency,
    /// A thread has `hops == 0`.
    ZeroHops,
    /// A thread has `fanout == 0`.
    ZeroFanout,
    /// `latency_dist` mean does not match `net_latency`.
    LatencyMeanMismatch,
    /// A destination chooser references a node outside `0..p` or is empty.
    BadDestination,
    /// No thread ever issues a request.
    NoActiveThreads,
    /// Horizon `end <= warmup` or negative warmup.
    BadWindow,
    /// `CyclesPerThread` with `n == 0`.
    ZeroCycles,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::TooFewNodes => "at least 2 nodes are required",
            ConfigError::TooManyNodes => "at most 2^20 nodes are supported",
            ConfigError::ThreadCountMismatch => "threads.len() must equal p",
            ConfigError::BadLatency => "net_latency must be finite and >= 0",
            ConfigError::ZeroHops => "hops must be >= 1",
            ConfigError::ZeroFanout => "fanout must be >= 1",
            ConfigError::LatencyMeanMismatch => "latency_dist mean must equal net_latency",
            ConfigError::BadDestination => "destination chooser invalid or out of range",
            ConfigError::NoActiveThreads => "at least one thread must issue requests",
            ConfigError::BadWindow => "horizon requires 0 <= warmup < end",
            ConfigError::ZeroCycles => "cycles-per-thread must be >= 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Check structural validity; every runner entry point calls this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.p < 2 {
            return Err(ConfigError::TooFewNodes);
        }
        if self.p > MAX_NODES {
            return Err(ConfigError::TooManyNodes);
        }
        if self.threads.len() != self.p {
            return Err(ConfigError::ThreadCountMismatch);
        }
        if !self.net_latency.is_finite() || self.net_latency < 0.0 {
            return Err(ConfigError::BadLatency);
        }
        if let Some(d) = &self.latency_dist {
            use lopc_dist::Distribution;
            let mean = d.mean();
            if (mean - self.net_latency).abs() > 1e-6 * self.net_latency.max(1.0) {
                return Err(ConfigError::LatencyMeanMismatch);
            }
        }
        let mut any_active = false;
        for (me, t) in self.threads.iter().enumerate() {
            if t.hops == 0 {
                return Err(ConfigError::ZeroHops);
            }
            if t.fanout == 0 {
                return Err(ConfigError::ZeroFanout);
            }
            if t.is_active() {
                any_active = true;
                if !t.dest.is_valid(me, self.p) {
                    return Err(ConfigError::BadDestination);
                }
            }
        }
        if !any_active {
            return Err(ConfigError::NoActiveThreads);
        }
        match self.stop {
            StopCondition::Horizon { warmup, end } => {
                if !(warmup >= 0.0 && end > warmup) {
                    return Err(ConfigError::BadWindow);
                }
            }
            StopCondition::CyclesPerThread { n } => {
                if n == 0 {
                    return Err(ConfigError::ZeroCycles);
                }
            }
        }
        Ok(())
    }

    /// Number of threads that issue requests.
    pub fn active_threads(&self) -> usize {
        self.threads.iter().filter(|t| t.is_active()).count()
    }

    /// Estimate of the steady-state pending-event population, used by the
    /// adaptive scheduler choice (`P × fanout` in the ROADMAP's shorthand).
    ///
    /// Each active thread keeps roughly `fanout` events in flight at any
    /// moment (its outstanding fork-join requests, or the compute-done event
    /// between cycles); pure servers add none of their own — their queued
    /// arrivals are already counted at the origin.
    pub fn pending_hint(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.is_active())
            .map(|t| t.fanout as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_dist::ServiceTime;

    fn base() -> SimConfig {
        SimConfig {
            p: 4,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(100.0),
            reply_handler: ServiceTime::constant(100.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(500.0)); 4],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 1_000.0,
                end: 10_000.0,
            },
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(base().validate(), Ok(()));
    }

    #[test]
    fn too_few_nodes() {
        let mut c = base();
        c.p = 1;
        c.threads.truncate(1);
        assert_eq!(c.validate(), Err(ConfigError::TooFewNodes));
    }

    #[test]
    fn too_many_nodes_rejected() {
        let mut c = base();
        c.p = MAX_NODES + 1;
        // threads.len() is checked after p's range, so the mismatch does not
        // mask the packing limit.
        assert_eq!(c.validate(), Err(ConfigError::TooManyNodes));
    }

    #[test]
    fn thread_count_mismatch() {
        let mut c = base();
        c.threads.pop();
        assert_eq!(c.validate(), Err(ConfigError::ThreadCountMismatch));
    }

    #[test]
    fn negative_latency_rejected() {
        let mut c = base();
        c.net_latency = -1.0;
        assert_eq!(c.validate(), Err(ConfigError::BadLatency));
    }

    #[test]
    fn zero_hops_rejected() {
        let mut c = base();
        c.threads[0].hops = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroHops));
    }

    #[test]
    fn all_servers_rejected() {
        let mut c = base();
        for t in &mut c.threads {
            t.work = None;
        }
        assert_eq!(c.validate(), Err(ConfigError::NoActiveThreads));
    }

    #[test]
    fn bad_window_rejected() {
        let mut c = base();
        c.stop = StopCondition::Horizon {
            warmup: 10.0,
            end: 10.0,
        };
        assert_eq!(c.validate(), Err(ConfigError::BadWindow));
    }

    #[test]
    fn zero_fanout_rejected() {
        let mut c = base();
        c.threads[0].fanout = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroFanout));
    }

    #[test]
    fn latency_dist_mean_must_match() {
        let mut c = base();
        c.latency_dist = Some(ServiceTime::exponential(11.0));
        assert_eq!(c.validate(), Err(ConfigError::LatencyMeanMismatch));
        c.latency_dist = Some(ServiceTime::exponential(10.0));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn zero_cycles_rejected() {
        let mut c = base();
        c.stop = StopCondition::CyclesPerThread { n: 0 };
        assert_eq!(c.validate(), Err(ConfigError::ZeroCycles));
    }

    #[test]
    fn out_of_range_destination_rejected() {
        let mut c = base();
        c.threads[0].dest = DestChooser::Fixed(99);
        assert_eq!(c.validate(), Err(ConfigError::BadDestination));
    }

    #[test]
    fn server_thread_is_inactive() {
        assert!(!ThreadSpec::server().is_active());
        assert!(ThreadSpec::worker(ServiceTime::constant(1.0)).is_active());
    }
}
