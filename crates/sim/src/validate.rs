//! The model-vs-simulator validation harness: replication-aware confidence
//! intervals instead of seed-pinned tolerance bands (DESIGN.md §8).
//!
//! A validation test states a *prediction* (from the analytic model), a
//! *measurement recipe* (a [`SimConfig`] plus a statistic extracted from each
//! [`SimReport`]), and an *acceptance criterion*
//! ([`lopc_stats::Acceptance`]). The harness then:
//!
//! 1. runs independent replications (seeds `base, base+1, …`) under the
//!    sequential stopping rule — more replications only when the confidence
//!    interval is still too wide, up to a hard cap;
//! 2. applies the acceptance criterion to the *interval*, never to a point
//!    sample, so a pass or fail is a statement about the estimated mean and
//!    cannot hinge on one lucky or unlucky seed;
//! 3. on failure, panics with the full statistical context (prediction,
//!    mean, CI, replication count, criterion).
//!
//! Because acceptance is interval-based, the suite passes for *any* base
//! seed; CI exercises that by exporting `LOPC_TEST_SEED_OFFSET` (added to
//! every config's seed by [`Validation::run`]) and `LOPC_TEST_SCHEDULER`
//! (forces one pending-event scheduler suite-wide — results are unchanged
//! by construction, so this catches scheduler-dependent regressions).
//!
//! # Example
//!
//! ```
//! use lopc_sim::validate::{assert_model_matches_sim, Validation};
//! use lopc_sim::{SimConfig, StopCondition, ThreadSpec};
//! use lopc_dist::ServiceTime;
//!
//! let cfg = SimConfig {
//!     p: 2,
//!     net_latency: 10.0,
//!     request_handler: ServiceTime::constant(50.0),
//!     reply_handler: ServiceTime::constant(50.0),
//!     threads: vec![ThreadSpec::worker(ServiceTime::constant(200.0)); 2],
//!     protocol_processor: false,
//!     latency_dist: None,
//!     stop: StopCondition::Horizon { warmup: 2_000.0, end: 20_000.0 },
//!     seed: 7,
//! };
//! // Two-node ping-pong with constant times is exactly W + 2St + 2So = 320.
//! assert_model_matches_sim(
//!     "ping-pong R",
//!     &cfg,
//!     320.0,
//!     |r| r.aggregate.mean_r,
//!     &Validation::equivalence(0.02),
//! );
//! ```

use std::sync::OnceLock;

use crate::config::{ConfigError, SimConfig};
use crate::runner::Replications;
use crate::sched::Scheduler;
use crate::stats::SimReport;
use lopc_stats::{check_match, Acceptance, MatchReport, StoppingRule, Summary};

/// Scheduler forced by `LOPC_TEST_SCHEDULER` (`calendar` / `heap`), if any.
///
/// Read once per process; the CI matrix uses it to run the whole tier-1
/// suite under each scheduler. An unrecognised value panics loudly rather
/// than silently testing the wrong thing.
pub fn env_scheduler() -> Option<Scheduler> {
    static CACHE: OnceLock<Option<Scheduler>> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("LOPC_TEST_SCHEDULER") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" | "auto" => None,
            "calendar" => Some(Scheduler::Calendar),
            "heap" => Some(Scheduler::BinaryHeap),
            other => panic!("LOPC_TEST_SCHEDULER must be calendar|heap|auto, got {other:?}"),
        },
    })
}

/// Worker-thread count forced by `LOPC_TEST_THREADS`, if any.
///
/// When set, single-run entry points ([`crate::run`], [`crate::run_traced`],
/// [`crate::run_with_scheduler`]) route through the conservative parallel
/// engine ([`crate::par::run_par`]) with this many workers. The parallel
/// engine is bit-identical to the sequential one by construction, so the CI
/// matrix uses this to run the whole tier-1 suite under 1/2/4 workers —
/// any divergence is a determinism regression. An unparsable or zero value
/// panics loudly rather than silently testing the wrong thing.
pub fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("LOPC_TEST_THREADS") {
        Err(_) => None,
        Ok(v) if v.is_empty() => None,
        Ok(v) => {
            let n: usize = v.parse().unwrap_or_else(|_| {
                panic!("LOPC_TEST_THREADS must be a positive integer, got {v:?}")
            });
            assert!(n >= 1, "LOPC_TEST_THREADS must be >= 1, got {n}");
            Some(n)
        }
    })
}

/// Seed offset from `LOPC_TEST_SEED_OFFSET` (0 when unset).
///
/// Validation tests add this to their base seeds so CI can prove the suite
/// passes for a seed nobody tuned for.
pub fn env_seed_offset() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("LOPC_TEST_SEED_OFFSET") {
        Err(_) => 0,
        Ok(v) if v.is_empty() => 0,
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("LOPC_TEST_SEED_OFFSET must be a u64, got {v:?}")),
    })
}

/// A test's base seed shifted by the environment's seed offset.
///
/// Use for direct `run`/`run_replications` calls in tests; [`Validation::run`]
/// applies it automatically, so configs passed to the harness should carry
/// the *unshifted* base seed.
pub fn test_seed(base: u64) -> u64 {
    base.wrapping_add(env_seed_offset())
}

/// A complete validation recipe: stopping rule + acceptance criterion.
#[derive(Clone, Copy, Debug)]
pub struct Validation {
    /// When to stop replicating.
    pub rule: StoppingRule,
    /// How the prediction is compared against the replicated interval.
    pub acceptance: Acceptance,
}

impl Default for Validation {
    /// TOST equivalence at a 10 % relative margin — LoPC's "within a few
    /// percent" headline with quick-window headroom (DESIGN.md §8).
    fn default() -> Self {
        Validation::equivalence(0.10)
    }
}

impl Validation {
    /// Equivalence at a relative margin: the whole CI must lie within
    /// `prediction ± rel·|prediction|`.
    pub fn equivalence(rel: f64) -> Self {
        Validation {
            rule: StoppingRule::default(),
            acceptance: Acceptance::Equivalence { rel, abs: 0.0 },
        }
    }

    /// Equivalence at a purely absolute margin (for near-zero quantities
    /// such as utilisations).
    pub fn abs_equivalence(abs: f64) -> Self {
        Validation {
            rule: StoppingRule::default().with_abs_precision(abs / 2.0),
            acceptance: Acceptance::Equivalence { rel: 0.0, abs },
        }
    }

    /// The CI must contain the prediction (unbiasedness claim — use only
    /// where the model is exact, not merely close).
    pub fn ci_contains() -> Self {
        Validation {
            rule: StoppingRule::default(),
            acceptance: Acceptance::CiContains,
        }
    }

    /// Asymmetric band: the measurement may fall up to `below` under the
    /// prediction and up to `above` over it (both as fractions of the
    /// prediction) — for signed claims like "conservative by at most 5 %".
    pub fn band(below: f64, above: f64) -> Self {
        Validation {
            rule: StoppingRule::default(),
            acceptance: Acceptance::Band { below, above },
        }
    }

    /// Override the stopping rule.
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Run the recipe: replicate `cfg` (seed shifted by the environment
    /// offset) until the stopping rule is satisfied, then judge `prediction`
    /// against the interval of `stat`.
    ///
    /// Returns the verdict plus the replications so further statistics can
    /// be extracted from the *same* runs (response-time components, per-node
    /// values) without re-simulating.
    pub fn run(
        &self,
        cfg: &SimConfig,
        prediction: f64,
        stat: impl Fn(&SimReport) -> f64,
    ) -> Result<(MatchReport, Replications), ConfigError> {
        let mut shifted = cfg.clone();
        shifted.seed = test_seed(cfg.seed);
        let reps = crate::runner::run_until_precision(&shifted, &self.rule, &stat)?;
        let summary = reps.summary(&stat);
        Ok((
            check_match(prediction, &summary, self.rule.confidence, &self.acceptance),
            reps,
        ))
    }

    /// Judge a further statistic against the *same* replications returned by
    /// [`Validation::run`] (no new simulation).
    pub fn check_stat(
        &self,
        reps: &Replications,
        prediction: f64,
        stat: impl Fn(&SimReport) -> f64,
    ) -> MatchReport {
        let summary: Summary = reps.summary(stat);
        check_match(prediction, &summary, self.rule.confidence, &self.acceptance)
    }
}

/// Assert that the model's `prediction` matches the replicated simulator
/// measurement of `stat` under the validation recipe, panicking with full
/// statistical context otherwise.
///
/// This is the single entry point the integration suite uses for every
/// model-vs-sim claim; see the [module docs](self) for the protocol.
pub fn assert_model_matches_sim(
    label: &str,
    cfg: &SimConfig,
    prediction: f64,
    stat: impl Fn(&SimReport) -> f64,
    validation: &Validation,
) -> Replications {
    let (report, reps) = validation
        .run(cfg, prediction, stat)
        .unwrap_or_else(|e| panic!("{label}: invalid config: {e}"));
    assert!(
        report.passed,
        "{label}: model-vs-sim validation failed (seed base {}, offset {}): {report}",
        cfg.seed,
        env_seed_offset()
    );
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StopCondition, ThreadSpec};
    use lopc_dist::ServiceTime;

    /// Deterministic two-node ping-pong: every quantity is exact, so the
    /// harness must accept tight margins and reject wrong predictions.
    fn pingpong() -> SimConfig {
        SimConfig {
            p: 2,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(200.0)); 2],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 2_000.0,
                end: 20_000.0,
            },
            seed: 11,
        }
    }

    #[test]
    fn exact_prediction_passes_tight_equivalence() {
        // R = W + 2St + 2So = 200 + 20 + 100 = 320, deterministically.
        assert_model_matches_sim(
            "pingpong",
            &pingpong(),
            320.0,
            |r| r.aggregate.mean_r,
            &Validation::equivalence(0.01),
        );
    }

    #[test]
    #[should_panic(expected = "validation failed")]
    fn wrong_prediction_fails_with_context() {
        assert_model_matches_sim(
            "pingpong-wrong",
            &pingpong(),
            400.0,
            |r| r.aggregate.mean_r,
            &Validation::equivalence(0.05),
        );
    }

    #[test]
    fn ci_contains_on_exact_quantity() {
        // Deterministic measurement: the (zero-width) CI is exactly 320.
        let (report, reps) = Validation::ci_contains()
            .run(&pingpong(), 320.0, |r| r.aggregate.mean_r)
            .unwrap();
        assert!(report.passed, "{report}");
        // Deterministic across seeds: stopping rule exits at the pilot.
        assert_eq!(reps.reports.len(), StoppingRule::default().min_reps);
    }

    #[test]
    fn check_stat_reuses_replications() {
        let v = Validation::equivalence(0.01);
        let (report, reps) = v.run(&pingpong(), 320.0, |r| r.aggregate.mean_r).unwrap();
        assert!(report.passed);
        // Rw is exactly W = 200 on the same runs; no re-simulation.
        let rw = v.check_stat(&reps, 200.0, |r| r.aggregate.mean_rw);
        assert!(rw.passed, "{rw}");
        let wrong = v.check_stat(&reps, 150.0, |r| r.aggregate.mean_rw);
        assert!(!wrong.passed);
    }

    #[test]
    fn band_rejects_the_wrong_side() {
        // Measurement is exactly 320. A band allowing only over-measurement
        // rejects a prediction of 330 (measurement 3 % *below* it)...
        let v = Validation::band(0.0, 0.05);
        let (report, _) = v.run(&pingpong(), 330.0, |r| r.aggregate.mean_r).unwrap();
        assert!(!report.passed);
        // ...while one allowing 5 % shortfall accepts it.
        let v = Validation::band(0.05, 0.05);
        let (report, _) = v.run(&pingpong(), 330.0, |r| r.aggregate.mean_r).unwrap();
        assert!(report.passed, "{report}");
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = pingpong();
        cfg.p = 1;
        cfg.threads.truncate(1);
        assert!(Validation::default()
            .run(&cfg, 1.0, |r| r.aggregate.mean_r)
            .is_err());
    }

    #[test]
    fn seed_offset_defaults_to_zero() {
        // The test environment does not set the variable; the offset is 0
        // and test_seed is the identity.
        assert_eq!(test_seed(42), 42 + env_seed_offset());
    }
}
