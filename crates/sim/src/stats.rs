//! Measurement machinery: streaming moments, time-weighted levels, and the
//! per-node / aggregate report consumed by the validation experiments.
//!
//! The quantities tracked mirror Table 4.1 of the thesis: per-cycle response
//! components `Rw`, `Rq`, `Ry`, `R`; per-node utilisations `Uq`, `Uy`; and
//! time-averaged handler queue lengths `Qq`, `Qy`.

use crate::config::Time;

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / ((self.n - 1) as f64 * self.n as f64)).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Integrates a piecewise-constant level over time; yields the time average
/// (used for queue lengths and utilisations).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    level: f64,
    last_t: Time,
    start_t: Time,
    integral: f64,
}

impl TimeWeighted {
    /// Start integrating at time `t0` with level 0.
    pub fn new(t0: Time) -> Self {
        TimeWeighted {
            level: 0.0,
            last_t: t0,
            start_t: t0,
            integral: 0.0,
        }
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Advance to time `t` and change the level by `delta`.
    #[inline]
    pub fn add(&mut self, t: Time, delta: f64) {
        self.integral += self.level * (t - self.last_t);
        self.last_t = t;
        self.level += delta;
    }

    /// Advance to time `t` and set the level.
    #[inline]
    pub fn set(&mut self, t: Time, level: f64) {
        self.integral += self.level * (t - self.last_t);
        self.last_t = t;
        self.level = level;
    }

    /// Discard history: restart the integral at time `t`, keeping the level
    /// (called at the end of warmup).
    pub fn reset(&mut self, t: Time) {
        self.last_t = t;
        self.start_t = t;
        self.integral = 0.0;
    }

    /// Time average over `[start, t_end]`.
    pub fn average(&self, t_end: Time) -> f64 {
        let span = t_end - self.start_t;
        if span <= 0.0 {
            return 0.0;
        }
        (self.integral + self.level * (t_end - self.last_t)) / span
    }
}

/// Raw per-node statistics gathered by the engine.
#[derive(Clone, Debug)]
pub struct NodeStats {
    /// Response time per compute/request cycle (measured at the origin).
    pub r: Welford,
    /// Compute residence time per cycle (`Rw`).
    pub rw: Welford,
    /// Sum of request-handler responses per cycle (`Rq`, summed over hops).
    pub rq: Welford,
    /// Reply-handler response per cycle (`Ry`).
    pub ry: Welford,
    /// Per-visit request-handler response measured at *this* node as server.
    pub rq_at_server: Welford,
    /// Request handler count in system (queued + in service): time-avg = `Qq`.
    pub nq: TimeWeighted,
    /// Reply handler count in system: time-avg = `Qy`.
    pub ny: TimeWeighted,
    /// Request-handler busy level (0/1): time-avg = `Uq`.
    pub busy_req: TimeWeighted,
    /// Reply-handler busy level (0/1): time-avg = `Uy`.
    pub busy_rep: TimeWeighted,
    /// Compute busy level (0/1).
    pub busy_compute: TimeWeighted,
    /// Cycles completed in the measurement window.
    pub cycles: u64,
    /// Request handlers completed at this node in the window.
    pub requests_served: u64,
    /// Deepest message backlog observed (queued + in service), over the
    /// whole run — evidence for the §2 infinite-buffer assumption.
    pub max_depth: u64,
}

impl NodeStats {
    /// Fresh stats starting at time 0.
    pub fn new() -> Self {
        NodeStats {
            r: Welford::new(),
            rw: Welford::new(),
            rq: Welford::new(),
            ry: Welford::new(),
            rq_at_server: Welford::new(),
            nq: TimeWeighted::new(0.0),
            ny: TimeWeighted::new(0.0),
            busy_req: TimeWeighted::new(0.0),
            busy_rep: TimeWeighted::new(0.0),
            busy_compute: TimeWeighted::new(0.0),
            cycles: 0,
            requests_served: 0,
            max_depth: 0,
        }
    }

    /// Restart all time integrals at `t` (end of warmup).
    pub fn reset_time_averages(&mut self, t: Time) {
        self.nq.reset(t);
        self.ny.reset(t);
        self.busy_req.reset(t);
        self.busy_rep.reset(t);
        self.busy_compute.reset(t);
    }
}

impl Default for NodeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary of one node at the end of a run.
///
/// `PartialEq` compares every field bit-for-bit (`f64` equality, no
/// tolerance) — this is deliberate: the differential suites assert that
/// schedulers and the parallel engine reproduce *exactly* the same numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSummary {
    /// Mean cycle response time `R` (0 if the node completed no cycles).
    pub mean_r: f64,
    /// Mean compute residence `Rw`.
    pub mean_rw: f64,
    /// Mean per-cycle request-handler response `Rq`.
    pub mean_rq: f64,
    /// Mean reply-handler response `Ry`.
    pub mean_ry: f64,
    /// Mean request-handler response measured at this node as a server.
    pub mean_rq_at_server: f64,
    /// Time-averaged request-handler population `Qq`.
    pub qq: f64,
    /// Time-averaged reply-handler population `Qy`.
    pub qy: f64,
    /// Utilisation by request handlers `Uq`.
    pub uq: f64,
    /// Utilisation by reply handlers `Uy`.
    pub uy: f64,
    /// Utilisation by computation.
    pub u_compute: f64,
    /// Cycles completed in the window.
    pub cycles: u64,
    /// Request handlers served in the window.
    pub requests_served: u64,
    /// Deepest message backlog observed at this node over the whole run.
    pub max_depth: u64,
}

/// Complete result of one simulation run.
///
/// `PartialEq` is exact (bit-for-bit on every float, including the full
/// cycle trace); see [`NodeSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Per-node summaries.
    pub nodes: Vec<NodeSummary>,
    /// Pooled cycle statistics across all active nodes.
    pub aggregate: Aggregate,
    /// Length of the measurement window (horizon mode) or total runtime
    /// (makespan mode).
    pub window: f64,
    /// Completion time of the last cycle (makespan mode; equals the end of
    /// the window in horizon mode).
    pub makespan: f64,
    /// Total events processed (performance diagnostics).
    pub events: u64,
    /// Per-cycle response times in completion order, pooled over nodes —
    /// recorded only when the run was started with
    /// [`Engine::with_cycle_trace`](crate::Engine::with_cycle_trace) (or
    /// [`run_traced`](crate::runner::run_traced)), empty otherwise. This is
    /// the within-run series `lopc_stats::batch_means` consumes to build a
    /// single-long-run CI where 5+ replications are unaffordable; successive
    /// entries are autocorrelated, so never feed them to a plain
    /// [`Summary`](lopc_stats::Summary) as if independent.
    pub cycle_trace: Vec<f64>,
}

/// Pooled statistics across nodes.
///
/// `PartialEq` is exact (bit-for-bit); see [`NodeSummary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregate {
    /// Mean cycle response time `R`.
    pub mean_r: f64,
    /// Standard error of `mean_r`.
    pub r_std_err: f64,
    /// Mean compute residence `Rw`.
    pub mean_rw: f64,
    /// Mean per-cycle request response `Rq`.
    pub mean_rq: f64,
    /// Mean reply response `Ry`.
    pub mean_ry: f64,
    /// Mean request-handler utilisation over all nodes (`Uq`).
    pub mean_uq: f64,
    /// Mean reply-handler utilisation over all nodes (`Uy`).
    pub mean_uy: f64,
    /// Mean request population over all nodes (`Qq`).
    pub mean_qq: f64,
    /// Mean reply population over all nodes (`Qy`).
    pub mean_qy: f64,
    /// Total cycles completed in the window.
    pub total_cycles: u64,
    /// System throughput `X` = total cycles / window (cycles per unit time).
    pub throughput: f64,
}

impl SimReport {
    /// Throughput per node (X/P).
    pub fn throughput_per_node(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.aggregate.throughput / self.nodes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn welford_merge_equals_pooled() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut pooled = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            pooled.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.mean() - pooled.mean()).abs() < 1e-9);
        assert!((a.variance() - pooled.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&Welford::new());
        assert_eq!(a.mean(), before);

        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new(0.0);
        tw.set(0.0, 1.0);
        tw.set(5.0, 0.0); // level 1 for 5 units
        tw.set(10.0, 2.0); // level 0 for 5 units
                           // level 2 for 10 units -> integral = 5 + 0 + 20 = 25 over 20 units.
        assert!((tw.average(20.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_reset_discards_history() {
        let mut tw = TimeWeighted::new(0.0);
        tw.set(0.0, 10.0);
        tw.reset(100.0);
        // After reset only the ongoing level counts.
        assert!((tw.average(110.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_level() {
        let mut tw = TimeWeighted::new(0.0);
        tw.add(1.0, 1.0);
        tw.add(2.0, 1.0);
        assert_eq!(tw.level(), 2.0);
        tw.add(3.0, -2.0);
        assert_eq!(tw.level(), 0.0);
        // Integral: 0*1 + 1*1 + 2*1 = 3 over 4 units.
        assert!((tw.average(4.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span_is_zero() {
        let tw = TimeWeighted::new(5.0);
        assert_eq!(tw.average(5.0), 0.0);
    }
}
