//! Destination selection: the executable form of the routing fractions
//! `V[c][k]` of the general model (Appendix A).

use crate::config::NodeId;
use rand::Rng;

/// How a thread (or a forwarding handler) picks the next destination.
#[derive(Clone, Debug)]
pub enum DestChooser {
    /// Uniform over all nodes except the chooser (homogeneous all-to-all,
    /// §5: `V = 1/P` of total traffic to each node).
    UniformOther,
    /// Uniform over a fixed set of nodes (work-pile clients choosing a
    /// server, §6).
    UniformAmong(Vec<NodeId>),
    /// Deterministic cyclic order over a set (matrix-vector multiply `put`s
    /// to each other node in turn, §3).
    RoundRobin(Vec<NodeId>),
    /// Always the same node.
    Fixed(NodeId),
    /// Weighted choice; weights need not be normalised (hotspot patterns
    /// exercising the non-homogeneous general model).
    Weighted(Vec<(NodeId, f64)>),
}

impl DestChooser {
    /// Validate against the owner node `me` and machine size `p`.
    pub fn is_valid(&self, me: NodeId, p: usize) -> bool {
        match self {
            DestChooser::UniformOther => p >= 2,
            DestChooser::UniformAmong(set) | DestChooser::RoundRobin(set) => {
                !set.is_empty() && set.iter().all(|&d| d < p && d != me)
            }
            DestChooser::Fixed(d) => *d < p && *d != me,
            DestChooser::Weighted(ws) => {
                !ws.is_empty()
                    && ws.iter().all(|&(d, w)| d < p && d != me && w >= 0.0)
                    && ws.iter().map(|&(_, w)| w).sum::<f64>() > 0.0
            }
        }
    }

    /// Pick the next destination. `rr` is the caller-owned round-robin
    /// cursor (ignored by the random choosers).
    pub fn pick<R: Rng + ?Sized>(
        &self,
        me: NodeId,
        p: usize,
        rng: &mut R,
        rr: &mut usize,
    ) -> NodeId {
        match self {
            DestChooser::UniformOther => {
                debug_assert!(p >= 2);
                let k = rng.random_range(0..p - 1);
                if k >= me {
                    k + 1
                } else {
                    k
                }
            }
            DestChooser::UniformAmong(set) => set[rng.random_range(0..set.len())],
            DestChooser::RoundRobin(set) => {
                let d = set[*rr % set.len()];
                *rr = (*rr + 1) % set.len();
                d
            }
            DestChooser::Fixed(d) => *d,
            DestChooser::Weighted(ws) => {
                let total: f64 = ws.iter().map(|&(_, w)| w).sum();
                let mut u = rng.random::<f64>() * total;
                for &(d, w) in ws {
                    if u < w {
                        return d;
                    }
                    u -= w;
                }
                ws[ws.len() - 1].0
            }
        }
    }

    /// Routing fractions `V[k]` implied by this chooser — one row of the
    /// general model's visit matrix (sums to 1 for a single hop).
    pub fn visit_fractions(&self, me: NodeId, p: usize) -> Vec<f64> {
        let mut v = vec![0.0; p];
        match self {
            DestChooser::UniformOther => {
                let f = 1.0 / (p - 1) as f64;
                for (k, slot) in v.iter_mut().enumerate() {
                    if k != me {
                        *slot = f;
                    }
                }
            }
            DestChooser::UniformAmong(set) => {
                let f = 1.0 / set.len() as f64;
                for &d in set {
                    v[d] += f;
                }
            }
            DestChooser::RoundRobin(set) => {
                let f = 1.0 / set.len() as f64;
                for &d in set {
                    v[d] += f;
                }
            }
            DestChooser::Fixed(d) => v[*d] = 1.0,
            DestChooser::Weighted(ws) => {
                let total: f64 = ws.iter().map(|&(_, w)| w).sum();
                for &(d, w) in ws {
                    v[d] += w / total;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_other_never_self() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut rr = 0;
        let c = DestChooser::UniformOther;
        for _ in 0..1000 {
            let d = c.pick(3, 8, &mut rng, &mut rr);
            assert!(d < 8 && d != 3);
        }
    }

    #[test]
    fn uniform_other_covers_all_targets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut rr = 0;
        let c = DestChooser::UniformOther;
        let mut seen = [0u32; 4];
        for _ in 0..4000 {
            seen[c.pick(0, 4, &mut rng, &mut rr)] += 1;
        }
        assert_eq!(seen[0], 0);
        for &s in &seen[1..] {
            assert!(s > 800, "roughly uniform: {seen:?}");
        }
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut rr = 0;
        let c = DestChooser::RoundRobin(vec![1, 2, 3]);
        let picks: Vec<NodeId> = (0..6).map(|_| c.pick(0, 4, &mut rng, &mut rr)).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut rr = 0;
        let c = DestChooser::Weighted(vec![(1, 3.0), (2, 1.0)]);
        let mut ones = 0;
        let n = 10_000;
        for _ in 0..n {
            if c.pick(0, 3, &mut rng, &mut rr) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn visit_fractions_sum_to_one() {
        for c in [
            DestChooser::UniformOther,
            DestChooser::UniformAmong(vec![1, 2]),
            DestChooser::RoundRobin(vec![1, 2, 3]),
            DestChooser::Fixed(2),
            DestChooser::Weighted(vec![(1, 2.0), (3, 2.0)]),
        ] {
            let v = c.visit_fractions(0, 4);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{c:?} sums to {sum}");
            assert_eq!(v[0], 0.0, "{c:?} must not visit self");
        }
    }

    #[test]
    fn validity_checks() {
        assert!(DestChooser::UniformOther.is_valid(0, 2));
        assert!(!DestChooser::Fixed(0).is_valid(0, 4), "self loop");
        assert!(!DestChooser::Fixed(9).is_valid(0, 4), "out of range");
        assert!(!DestChooser::UniformAmong(vec![]).is_valid(0, 4), "empty");
        assert!(
            !DestChooser::Weighted(vec![(1, 0.0)]).is_valid(0, 4),
            "zero weight"
        );
    }

    #[test]
    fn fixed_always_picks_target() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut rr = 0;
        let c = DestChooser::Fixed(2);
        for _ in 0..10 {
            assert_eq!(c.pick(0, 4, &mut rng, &mut rr), 2);
        }
    }
}
