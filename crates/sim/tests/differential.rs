//! Differential tests: the calendar-queue scheduler must be observationally
//! equivalent to the binary-heap reference.
//!
//! Two layers, both over randomized inputs (the vendored proptest stand-in
//! seeds each test deterministically, so failures are reproducible):
//!
//! 1. **Queue level** — arbitrary push/pop interleavings with adversarial
//!    time patterns (uniform, bursty ties, exponential, far-future
//!    outliers) must pop in the identical `(time, seq)` order from both
//!    [`CalendarQueue`] and [`BinaryHeapQueue`].
//! 2. **Engine level** — full simulations under both schedulers must
//!    produce bit-identical reports (event counts, mean response, makespan,
//!    per-node cycles) for randomly drawn configurations across both stop
//!    conditions, fork-join fanout, multi-hop forwarding, and the
//!    protocol-processor variant.

use lopc_dist::ServiceTime;
use lopc_sim::{
    run_with_scheduler, BinaryHeapQueue, CalendarQueue, DestChooser, EventQueue, Keyed, Scheduler,
    SimConfig, StopCondition, ThreadSpec,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy, Debug, PartialEq)]
struct Item {
    t: f64,
    seq: u64,
}
impl Keyed for Item {
    fn time(&self) -> f64 {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Draw the next event time for the given adversarial pattern.
fn next_time(pattern: usize, rng: &mut SmallRng, last_popped: f64) -> f64 {
    match pattern % 5 {
        // Uniform over a wide range (no relation to the current position).
        0 => rng.random::<f64>() * 1e5,
        // Bursty ties: a coarse lattice, many simultaneous events.
        1 => (rng.random::<f64>() * 40.0).floor() * 250.0,
        // Hold-model style: just after whatever popped last.
        2 => last_popped + rng.random::<f64>() * 100.0,
        // Mostly near-term with rare far-future outliers (overflow path).
        3 => {
            if rng.random::<f64>() < 0.05 {
                1e9 + rng.random::<f64>() * 1e9
            } else {
                rng.random::<f64>() * 1000.0
            }
        }
        // Tiny dense cluster: stresses the width estimator's tie handling.
        _ => 500.0 + (rng.random::<f64>() * 4.0).floor(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random push/pop interleavings pop identically from both queues.
    #[test]
    fn queue_pop_order_matches_heap(
        seed in 0u64..1_000_000,
        ops in 10usize..2000,
        pattern in 0usize..5,
        pop_bias in 0usize..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut seq = 0u64;
        let mut last_popped = 0.0;
        for _ in 0..ops {
            // pop_bias skews the mix so runs drain, grow, and oscillate.
            let do_pop = rng.random::<f64>() < [0.3, 0.5, 0.7][pop_bias];
            if do_pop {
                let a = cal.pop().map(|i: Item| (i.t, i.seq));
                let b = heap.pop().map(|i: Item| (i.t, i.seq));
                prop_assert_eq!(a, b, "mid-run pop diverged (seed {})", seed);
                if let Some((t, _)) = a {
                    last_popped = t;
                }
            } else {
                let item = Item { t: next_time(pattern, &mut rng, last_popped), seq };
                seq += 1;
                cal.push(item);
                heap.push(item);
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Full drain must agree element-wise and come out sorted.
        let mut prev: Option<(f64, u64)> = None;
        loop {
            let a = cal.pop().map(|i: Item| (i.t, i.seq));
            let b = heap.pop().map(|i: Item| (i.t, i.seq));
            prop_assert_eq!(a, b, "drain diverged (seed {})", seed);
            match a {
                None => break,
                Some(k) => {
                    if let Some(p) = prev {
                        prop_assert!(p < k, "drain not sorted: {:?} then {:?}", p, k);
                    }
                    prev = Some(k);
                }
            }
        }
        prop_assert!(cal.is_empty() && heap.is_empty());
    }
}

/// Build a randomized-but-valid configuration from drawn knobs.
#[allow(clippy::too_many_arguments)] // mirrors the proptest draw list
fn drawn_config(
    p: usize,
    w: f64,
    so: f64,
    dist_kind: usize,
    fanout: u32,
    hops: u32,
    pp: bool,
    horizon_mode: bool,
    seed: u64,
) -> SimConfig {
    let service = |mean: f64| match dist_kind % 3 {
        0 => ServiceTime::constant(mean),
        1 => ServiceTime::exponential(mean),
        _ => ServiceTime::with_cv2(mean, 2.0),
    };
    SimConfig {
        p,
        net_latency: 25.0,
        request_handler: service(so),
        reply_handler: service(so),
        threads: vec![
            ThreadSpec {
                work: Some(service(w.max(1.0))),
                dest: DestChooser::UniformOther,
                hops,
                fanout,
            };
            p
        ],
        protocol_processor: pp,
        latency_dist: None,
        stop: if horizon_mode {
            StopCondition::Horizon {
                warmup: 2_000.0,
                end: 20_000.0,
            }
        } else {
            StopCondition::CyclesPerThread { n: 25 }
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full simulations are bit-identical under both schedulers.
    #[test]
    fn engine_reports_identical_across_schedulers(
        p in 2usize..33,
        w in 0.0..2000.0f64,
        so in 1.0..400.0f64,
        dist_kind in 0usize..3,
        fanout in 1u32..4,
        hops in 1u32..3,
        pp_and_mode in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let cfg = drawn_config(
            p, w, so, dist_kind, fanout, hops,
            pp_and_mode & 1 == 1,
            pp_and_mode & 2 == 2,
            seed,
        );
        let cal = run_with_scheduler(&cfg, Scheduler::Calendar).unwrap();
        let heap = run_with_scheduler(&cfg, Scheduler::BinaryHeap).unwrap();
        prop_assert_eq!(cal.events, heap.events, "event counts diverged");
        prop_assert_eq!(cal.makespan, heap.makespan, "makespan diverged");
        prop_assert_eq!(
            cal.aggregate.mean_r,
            heap.aggregate.mean_r,
            "mean R diverged (not even by one ULP)"
        );
        prop_assert_eq!(cal.aggregate.total_cycles, heap.aggregate.total_cycles);
        prop_assert_eq!(cal.aggregate.throughput, heap.aggregate.throughput);
        for (a, b) in cal.nodes.iter().zip(&heap.nodes) {
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.requests_served, b.requests_served);
            prop_assert_eq!(a.mean_r, b.mean_r);
            prop_assert_eq!(a.qq, b.qq);
            prop_assert_eq!(a.u_compute, b.u_compute);
        }
    }
}

/// The default scheduler really is the calendar queue: `Engine::new` and an
/// explicit calendar run agree bit-for-bit with the heap reference.
#[test]
fn default_scheduler_matches_both_explicit_schedulers() {
    let cfg = drawn_config(16, 500.0, 131.0, 1, 1, 1, false, true, 7);
    let default = lopc_sim::run(&cfg).unwrap();
    let cal = run_with_scheduler(&cfg, Scheduler::Calendar).unwrap();
    let heap = run_with_scheduler(&cfg, Scheduler::BinaryHeap).unwrap();
    assert_eq!(default.aggregate.mean_r, cal.aggregate.mean_r);
    assert_eq!(default.aggregate.mean_r, heap.aggregate.mean_r);
    assert_eq!(default.events, heap.events);
}
