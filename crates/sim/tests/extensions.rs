//! Tests for the simulator extensions: fork-join fan-out, sampled wire
//! times, and message-backlog tracking.

use lopc_dist::ServiceTime;
use lopc_sim::{run, DestChooser, SimConfig, StopCondition, ThreadSpec};

fn base(p: usize, fanout: u32) -> SimConfig {
    SimConfig {
        p,
        net_latency: 25.0,
        request_handler: ServiceTime::constant(100.0),
        reply_handler: ServiceTime::constant(100.0),
        threads: vec![
            ThreadSpec {
                work: Some(ServiceTime::constant(800.0)),
                dest: DestChooser::UniformOther,
                hops: 1,
                fanout,
            };
            p
        ],
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::Horizon {
            warmup: 20_000.0,
            end: 150_000.0,
        },
        seed: 3,
    }
}

/// Deterministic two-node fork-join: both nodes fire one request at the only
/// other node. The lockstep cycle is exactly W + 2St + 2So (fanout 1).
/// This pins the fanout plumbing to the blocking baseline.
#[test]
fn two_node_fanout_one_exact() {
    let mut cfg = base(2, 1);
    cfg.stop = StopCondition::CyclesPerThread { n: 10 };
    let report = run(&cfg).unwrap();
    assert!((report.aggregate.mean_r - (800.0 + 50.0 + 200.0)).abs() < 1e-9);
}

/// Fork-join cycles complete only after all replies: with fanout k the
/// per-cycle Rq and Ry accumulators sum k handler responses each.
#[test]
fn fanout_accumulates_k_replies() {
    let k = 3u32;
    let report = run(&base(16, k)).unwrap();
    let a = &report.aggregate;
    // Rq >= k·So and Ry >= k·So because they are per-cycle *sums* over the
    // k requests/replies.
    assert!(a.mean_rq >= k as f64 * 100.0 - 1e-9, "Rq = {}", a.mean_rq);
    assert!(a.mean_ry >= k as f64 * 100.0 - 1e-9, "Ry = {}", a.mean_ry);
    // Requests served per completed cycle is k on average.
    let served: u64 = report.nodes.iter().map(|n| n.requests_served).sum();
    let ratio = served as f64 / a.total_cycles as f64;
    assert!(
        (ratio - k as f64).abs() < 0.1,
        "requests per cycle = {ratio}, expected ~{k}"
    );
}

/// Cycle time grows sublinearly in the fan-out: the round trips overlap.
#[test]
fn fanout_overlaps_round_trips() {
    let r1 = run(&base(16, 1)).unwrap().aggregate.mean_r;
    let r4 = run(&base(16, 4)).unwrap().aggregate.mean_r;
    // 4 serial round trips would add 3·(2St+2So) = 750 on top of r1; the
    // overlapped version must pay much less than that.
    assert!(r4 > r1, "more communication costs more");
    assert!(
        r4 - r1 < 0.8 * 3.0 * 250.0,
        "overlap: r4 - r1 = {} should be well under 750",
        r4 - r1
    );
}

/// §5.2's claim: "in a contention free network … the average wire time is
/// all we need" — replacing the constant latency with an exponential of the
/// same mean must leave the mean response time essentially unchanged.
#[test]
fn only_mean_wire_time_matters() {
    let constant = run(&base(16, 1)).unwrap().aggregate.mean_r;
    let mut jittered_cfg = base(16, 1);
    jittered_cfg.latency_dist = Some(ServiceTime::exponential(25.0));
    let jittered = run(&jittered_cfg).unwrap().aggregate.mean_r;
    assert!(
        (constant - jittered).abs() / constant < 0.02,
        "constant-latency R {constant} vs exponential-latency R {jittered}"
    );
}

/// Uniform jitter too, and determinism still holds with a latency dist.
#[test]
fn jittered_latency_is_deterministic() {
    let mut cfg = base(8, 1);
    cfg.latency_dist = Some(ServiceTime::uniform(0.0, 50.0)); // mean 25
    let a = run(&cfg).unwrap();
    let b = run(&cfg).unwrap();
    assert_eq!(a.aggregate.mean_r, b.aggregate.mean_r);
    assert_eq!(a.events, b.events);
}

/// §2's tractability assumption: hardware buffers can be treated as
/// infinite because observed backlogs stay tiny for blocking programs —
/// the simulator now produces the evidence.
#[test]
fn buffer_depths_stay_small_for_blocking_patterns() {
    let report = run(&base(32, 1)).unwrap();
    let worst = report.nodes.iter().map(|n| n.max_depth).max().unwrap();
    // With one outstanding request per node, a 512-byte hardware FIFO
    // (Alewife) holds ~dozens of 8-word messages; observed backlogs are far
    // below even a handful.
    assert!(worst <= 8, "deepest backlog {worst} messages");
    // Fan-out multiplies the backlog but stays bounded by the closed
    // population.
    let report4 = run(&base(32, 4)).unwrap();
    let worst4 = report4.nodes.iter().map(|n| n.max_depth).max().unwrap();
    assert!(worst4 >= worst, "fan-out deepens queues");
    assert!(worst4 <= 32, "still bounded: {worst4}");
}

/// Mean-mismatched latency distribution is rejected by validation.
#[test]
fn latency_mean_mismatch_rejected() {
    let mut cfg = base(4, 1);
    cfg.latency_dist = Some(ServiceTime::exponential(10.0)); // mean != 25
    assert!(run(&cfg).is_err());
}

/// Fork-join composes with multi-hop: each of the k requests takes h
/// handler visits.
#[test]
fn fanout_composes_with_hops() {
    let mut cfg = base(12, 2);
    for t in &mut cfg.threads {
        t.hops = 2;
    }
    let report = run(&cfg).unwrap();
    let a = &report.aggregate;
    // Per cycle: 2 requests × 2 hops = 4 request-handler visits.
    assert!(a.mean_rq >= 4.0 * 100.0 - 1e-9, "Rq = {}", a.mean_rq);
    let served: u64 = report.nodes.iter().map(|n| n.requests_served).sum();
    let ratio = served as f64 / a.total_cycles as f64;
    assert!((ratio - 4.0).abs() < 0.2, "visits per cycle = {ratio}");
}
