//! Differential equivalence: the conservative parallel engine must be
//! **bit-identical** to the sequential engine — same [`SimReport`] down to
//! the last ULP of every statistic, same per-cycle trace — for every
//! partition (LP count), every worker count, and both pending-event
//! schedulers.
//!
//! This is the proof that LP partitioning, null-message synchronization,
//! per-node counter-split RNG streams, and partition-independent event keys
//! compose into an engine whose *outputs* carry no trace of *how* they were
//! computed (DESIGN.md §13). The suite follows the PR-2 differential
//! discipline: randomized-but-valid configurations drawn by the vendored
//! proptest stand-in (deterministic seeding → reproducible failures), with
//! `assert_eq!` on whole reports rather than tolerance bands.
//!
//! Coverage axes per drawn case:
//! - topology: homogeneous all-to-all, client-server (dedicated server
//!   nodes), and a fixed ring — the partition boundaries cut each of these
//!   differently;
//! - wire latency: constant, sampled with a positive floor (uniform), and
//!   sampled with a zero floor (exponential — exercises the sequential
//!   fallback for zero lookahead);
//! - LP counts {1, 2, 4, 8} × worker counts {1, 2, 4} × both schedulers;
//! - both stop conditions, fork-join fanout, multi-hop forwarding, the
//!   protocol-processor variant;
//! - the environment knobs: seeds are shifted by `LOPC_TEST_SEED_OFFSET`
//!   (via [`lopc_sim::validate::test_seed`]), so the CI matrix proves the
//!   equivalence is seed-independent, not tuned.

use lopc_dist::ServiceTime;
use lopc_sim::validate::test_seed;
use lopc_sim::{
    run_par, DestChooser, Engine, ParOptions, Scheduler, SimConfig, SimReport, StopCondition,
    ThreadSpec,
};
use proptest::prelude::*;

/// The sequential reference run: a direct [`Engine`] (never routed through
/// `LOPC_TEST_THREADS`, which retargets the convenience entry points to the
/// parallel engine — the reference must stay genuinely sequential).
fn sequential(cfg: &SimConfig, scheduler: Scheduler) -> SimReport {
    Engine::with_scheduler(cfg.clone(), scheduler)
        .unwrap()
        .with_cycle_trace()
        .run_to_completion()
}

/// Build a randomized-but-valid configuration from drawn knobs.
#[allow(clippy::too_many_arguments)] // mirrors the proptest draw list
fn drawn_config(
    p: usize,
    w: f64,
    so: f64,
    dist_kind: usize,
    fanout: u32,
    hops: u32,
    pp_and_mode: usize,
    topology: usize,
    latency_kind: usize,
    seed: u64,
) -> SimConfig {
    let service = |mean: f64| match dist_kind % 3 {
        0 => ServiceTime::constant(mean),
        1 => ServiceTime::exponential(mean),
        _ => ServiceTime::with_cv2(mean, 2.0),
    };
    let worker = |dest: DestChooser| ThreadSpec {
        work: Some(service(w.max(1.0))),
        dest,
        hops,
        fanout,
    };
    let threads: Vec<ThreadSpec> = match topology % 3 {
        // Homogeneous all-to-all.
        0 => vec![worker(DestChooser::UniformOther); p],
        // Client-server: the first quarter (at least one node) serves, the
        // rest direct every request at the servers. Server nodes carry no
        // initial events, so their LPs fill purely through the channels.
        1 => {
            let servers = (p / 4).max(1).min(p - 1);
            let pool: Vec<usize> = (0..servers).collect();
            let mut v = vec![ThreadSpec::server(); servers];
            v.resize(p, worker(DestChooser::UniformAmong(pool)));
            v
        }
        // Ring: node k always requests from k+1 — every adjacent partition
        // boundary is a hot channel.
        _ => (0..p)
            .map(|k| worker(DestChooser::Fixed((k + 1) % p)))
            .collect(),
    };
    SimConfig {
        p,
        net_latency: 25.0,
        request_handler: service(so),
        reply_handler: service(so),
        threads,
        protocol_processor: pp_and_mode & 1 == 1,
        latency_dist: match latency_kind % 3 {
            0 => None,
            // Positive floor: parallel path with sampled wires.
            1 => Some(ServiceTime::uniform(15.0, 35.0)),
            // Zero floor: zero lookahead, sequential-fallback path.
            _ => Some(ServiceTime::exponential(25.0)),
        },
        stop: if pp_and_mode & 2 == 2 {
            StopCondition::Horizon {
                warmup: 2_000.0,
                end: 20_000.0,
            }
        } else {
            StopCondition::CyclesPerThread { n: 25 }
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole assertion: for random configurations, partitions, and
    /// worker pools, the parallel report — every node summary, every pooled
    /// statistic, the event count, the makespan, the full cycle trace — is
    /// the sequential report, bit for bit.
    #[test]
    fn par_reports_identical_to_sequential(
        p in 2usize..25,
        w in 0.0..2000.0f64,
        so in 1.0..400.0f64,
        dist_kind in 0usize..3,
        fanout in 1u32..4,
        hops in 1u32..3,
        pp_and_mode in 0usize..4,
        topology in 0usize..3,
        latency_kind in 0usize..3,
        lps_pick in 0usize..4,
        threads_pick in 0usize..3,
        scheduler_pick in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let cfg = drawn_config(
            p, w, so, dist_kind, fanout, hops, pp_and_mode,
            topology, latency_kind, test_seed(seed),
        );
        let scheduler = [Scheduler::Calendar, Scheduler::BinaryHeap][scheduler_pick];
        let reference = sequential(&cfg, scheduler);
        let opts = ParOptions {
            lps: [1, 2, 4, 8][lps_pick],
            threads: [1, 2, 4][threads_pick],
            scheduler: Some(scheduler),
            trace: true,
        };
        let par = run_par(&cfg, &opts).unwrap();
        prop_assert_eq!(
            par, reference,
            "parallel/sequential divergence: lps {} threads {} scheduler {:?}",
            opts.lps, opts.threads, scheduler
        );
    }
}

/// The deterministic grid the ISSUE names: one fixed configuration, every
/// combination of lps × threads × scheduler, all equal to one reference.
#[test]
fn full_grid_on_fixed_config_matches() {
    let cfg = drawn_config(10, 500.0, 131.0, 1, 2, 2, 2, 0, 0, test_seed(97));
    for scheduler in [Scheduler::Calendar, Scheduler::BinaryHeap] {
        let reference = sequential(&cfg, scheduler);
        for lps in [1, 2, 4, 8] {
            for threads in [1, 2, 4] {
                let opts = ParOptions {
                    lps,
                    threads,
                    scheduler: Some(scheduler),
                    trace: true,
                };
                assert_eq!(
                    run_par(&cfg, &opts).unwrap(),
                    reference,
                    "lps {lps} threads {threads} scheduler {scheduler:?}"
                );
            }
        }
    }
}

/// Per-node RNG streams are split by node id, not by LP: the drawn stream
/// for node k is identical whether k shares a core with all, some, or none
/// of the other nodes. (If streams were split per LP, every lps value would
/// produce a different — internally consistent — simulation, and this test
/// plus the proptest above would fail.)
#[test]
fn rng_streams_are_partition_independent() {
    let cfg = drawn_config(9, 800.0, 90.0, 1, 1, 1, 0, 2, 1, test_seed(31));
    let reference = sequential(&cfg, Scheduler::Calendar);
    // 3 LPs of 3 nodes vs 9 LPs of 1 node: maximally different groupings.
    for lps in [3, 9] {
        let opts = ParOptions {
            lps,
            threads: 2,
            scheduler: Some(Scheduler::Calendar),
            trace: true,
        };
        assert_eq!(run_par(&cfg, &opts).unwrap(), reference, "lps {lps}");
    }
}

/// The convenience entry points honour `LOPC_TEST_THREADS` (the CI matrix
/// sets it suite-wide); whatever the environment says, their reports equal
/// the direct sequential engine's.
#[test]
fn env_threads_routing_stays_bit_identical() {
    let cfg = drawn_config(8, 600.0, 120.0, 2, 1, 1, 3, 1, 0, test_seed(55));
    let via_env = lopc_sim::run_traced(&cfg).unwrap();
    let reference = sequential(
        &cfg,
        lopc_sim::validate::env_scheduler()
            .unwrap_or_else(|| Engine::new(cfg.clone()).unwrap().scheduler()),
    );
    assert_eq!(via_env, reference);
}
