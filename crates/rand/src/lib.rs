//! Minimal offline stand-in for the published `rand` crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so this crate implements exactly the 0.9-style API surface the
//! rest of the tree consumes:
//!
//! * [`Rng`] — `random::<T>()` and `random_range(range)`, blanket-implemented
//!   for every [`RngCore`] (including unsized `R: Rng + ?Sized` receivers);
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, seeded via SplitMix64, like the real `SmallRng` family).
//!
//! Determinism contract: the simulator's bit-reproducibility tests rely on
//! `seed_from_u64` producing the same stream on every platform, which this
//! implementation guarantees (pure integer arithmetic, no platform state).

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform integer in `[0, n)` by bitmask rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sampling range");
    if n == 1 {
        return 0;
    }
    let mask = u64::MAX >> (n - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: uniform over the type).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed, expanding it into the full RNG state.
    /// Equal seeds give identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand seeds into state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ (Blackman &
    /// Vigna), state expanded from the seed with SplitMix64 so that
    /// low-entropy seeds (0, 1, 2, …) still give well-mixed streams.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be uncorrelated");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_sampling_is_in_range_and_covers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = rng.random_range(0..7usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Non-zero start.
        for _ in 0..100 {
            let k = rng.random_range(3..5usize);
            assert!(k == 3 || k == 4);
        }
        // Degenerate single-element range.
        assert_eq!(rng.random_range(4..5usize), 4);
    }

    #[test]
    fn f64_range_sampling() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn unsized_receiver_works() {
        // The simulator passes `&mut R` where `R: Rng + ?Sized`.
        fn pick<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10usize)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let k = pick(&mut rng);
        assert!(k < 10);
    }

    #[test]
    fn bitmask_rejection_unbiased_small_range() {
        // n = 3 exercises the rejection path; chi-square-ish sanity bound.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut counts = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "counts {counts:?}");
        }
    }
}
