//! Secant method — faster than bisection when the function is smooth, used
//! by benches to compare solver strategies (see the `solver_perf` bench).

use crate::{Root, SolverError};

/// Find a root of `f` starting from abscissae `x0`, `x1`.
///
/// Falls back on returning an error rather than diverging: iterates are
/// required to stay finite, and the denominator must not vanish.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(tol > 0)` rejects NaN too
pub fn secant<F: FnMut(f64) -> f64>(
    mut f: F,
    x0: f64,
    x1: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, SolverError> {
    if !(tol > 0.0) {
        return Err(SolverError::InvalidInput("secant requires tol > 0"));
    }
    let mut a = x0;
    let mut b = x1;
    let mut fa = f(a);
    let mut fb = f(b);
    for i in 0..max_iter {
        if fb.is_nan() || !b.is_finite() {
            return Err(SolverError::NumericalBreakdown { at: b });
        }
        if fb.abs() < tol {
            return Ok(Root {
                x: b,
                f: fb,
                iterations: i,
            });
        }
        let denom = fb - fa;
        if denom == 0.0 {
            return Err(SolverError::NumericalBreakdown { at: b });
        }
        let next = b - fb * (b - a) / denom;
        a = b;
        fa = fb;
        b = next;
        fb = f(b);
    }
    Err(SolverError::NoConvergence {
        iterations: max_iter,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = secant(|x| x * x - 2.0, 1.0, 2.0, 1e-12, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn linear_converges_in_one_step() {
        let r = secant(|x| 3.0 * x - 6.0, 0.0, 1.0, 1e-12, 10).unwrap();
        assert!((r.x - 2.0).abs() < 1e-12);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn flat_function_breaks_down() {
        let e = secant(|_| 1.0, 0.0, 1.0, 1e-12, 10).unwrap_err();
        assert!(matches!(e, SolverError::NumericalBreakdown { .. }));
    }

    #[test]
    fn immediate_root_detected() {
        let r = secant(|x| x, -1.0, 0.0, 1e-12, 10).unwrap();
        assert_eq!(r.x, 0.0);
    }
}
