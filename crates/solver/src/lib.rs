//! Numerical substrate for the LoPC model.
//!
//! The thesis notes (§5.3) that "solving the model … requires solving a
//! quartic equation. Typically the simplest way to do this is to use an
//! equation solver to find a numerical solution." This crate is that
//! equation solver:
//!
//! * [`bisect`] — robust root finding for the scalar fixed-point equation
//!   `F[R] = R` of the homogeneous all-to-all model (§5.3) and the
//!   client-server response-time recursion (§6). `F` is continuous and
//!   strictly decreasing above the contention-free bound, so `g(R)=F(R)−R`
//!   has a unique bracketed root.
//! * [`solve_damped`] — damped simultaneous fixed-point iteration for the
//!   general Appendix A AMVA system (one equation set per node), which is not
//!   scalar.
//! * [`argmax_usize`] — integer grid argmax used for the optimal-server
//!   search in §6.
//! * [`batch`] — structure-of-arrays drivers that solve many independent
//!   instances of the above at once (sweeps, interpolation-cell builds,
//!   batch requests), bit-identical per lane to the scalar routines.
//! * [`par_map`] — embarrassingly-parallel parameter sweeps (std scoped
//!   threads) used by the benchmark harness to regenerate figures quickly;
//! * [`steal::WorkQueue`] — the work-stealing index distribution underneath
//!   `par_map` (and the simulator's replication runner), which keeps skewed
//!   sweeps balanced across cores.

pub mod batch;
pub mod bisection;
pub mod error;
pub mod fixed_point;
pub mod grid;
pub mod secant;
pub mod steal;
pub mod sweep;

pub use batch::{bracket_bisect_many, solve_damped_many, BracketBisectSpec};
pub use bisection::{bisect, bracket_upward, Root};
pub use error::SolverError;
pub use fixed_point::{solve_damped, Convergence, FixedPointOptions};
pub use grid::{argmax_usize, ArgmaxResult};
pub use secant::secant;
pub use steal::WorkQueue;
pub use sweep::par_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_round_trip() {
        // Solve x = 10/x  =>  x = sqrt(10), two ways.
        let f = |x: f64| 10.0 / x;
        let root = bisect(|x| f(x) - x, 1.0, 10.0, 1e-12, 200).unwrap();
        assert!((root.x - 10f64.sqrt()).abs() < 1e-9);

        let conv = solve_damped(
            vec![1.0],
            |x, out| out[0] = f(x[0]),
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!((conv.x[0] - 10f64.sqrt()).abs() < 1e-8);
    }
}
