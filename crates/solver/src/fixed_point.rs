//! Damped simultaneous fixed-point iteration for vector systems.
//!
//! The general LoPC model (Appendix A) is a system `x = F(x)` over the
//! per-node response times and queue lengths. AMVA systems of this shape are
//! contractive near the solution but can oscillate when iterated naively;
//! under-relaxation (`x ← (1−α)x + αF(x)`) restores monotone convergence.

use crate::SolverError;

/// Options controlling [`solve_damped`].
#[derive(Clone, Copy, Debug)]
pub struct FixedPointOptions {
    /// Relaxation factor `α ∈ (0, 1]`; 1 is undamped.
    pub damping: f64,
    /// Convergence tolerance on the max-norm of the relative update.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            damping: 0.5,
            tol: 1e-10,
            max_iter: 100_000,
        }
    }
}

/// Result of a converged fixed-point iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Convergence {
    /// The fixed point.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final max-norm relative residual.
    pub residual: f64,
}

/// Iterate `x ← (1−α)x + α·F(x)` to convergence.
///
/// `f(x, out)` must write `F(x)` into `out` (same length as `x`). The
/// iteration stops when `max_i |F(x)_i − x_i| / max(|x_i|, 1)` falls below
/// `opts.tol`.
///
/// # Example
///
/// A two-variable coupled system of the shape the Appendix A AMVA model
/// produces (`x₀ = 1 + x₁/2`, `x₁ = 1 + x₀/2`, fixed point at `(2, 2)`):
///
/// ```
/// use lopc_solver::{solve_damped, FixedPointOptions};
///
/// let conv = solve_damped(
///     vec![0.0, 0.0],
///     |x, out| {
///         out[0] = 1.0 + x[1] / 2.0;
///         out[1] = 1.0 + x[0] / 2.0;
///     },
///     &FixedPointOptions::default(),
/// )
/// .unwrap();
/// assert!((conv.x[0] - 2.0).abs() < 1e-8);
/// assert!((conv.x[1] - 2.0).abs() < 1e-8);
/// ```
pub fn solve_damped<F>(
    x0: Vec<f64>,
    mut f: F,
    opts: &FixedPointOptions,
) -> Result<Convergence, SolverError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    if x0.is_empty() {
        return Err(SolverError::InvalidInput("empty state vector"));
    }
    if !(opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(SolverError::InvalidInput("damping must be in (0, 1]"));
    }
    let mut x = x0;
    let mut fx = vec![0.0; x.len()];
    let mut residual = f64::INFINITY;
    let mut prev_residual = f64::INFINITY;
    for iter in 0..opts.max_iter {
        f(&x, &mut fx);
        prev_residual = residual;
        residual = 0.0f64;
        for i in 0..x.len() {
            if fx[i].is_nan() {
                return Err(SolverError::NumericalBreakdown { at: x[i] });
            }
            let denom = x[i].abs().max(1.0);
            residual = residual.max((fx[i] - x[i]).abs() / denom);
        }
        if residual < opts.tol {
            return Ok(Convergence {
                x,
                iterations: iter,
                residual,
            });
        }
        for i in 0..x.len() {
            x[i] = (1.0 - opts.damping) * x[i] + opts.damping * fx[i];
        }
    }
    // Budget exhausted: hand back the last iterate rather than discarding
    // the work, and tell the caller whether the residual was still falling
    // (a slow contraction a retry with a larger budget would finish) or not
    // (oscillation/divergence — retrying is pointless). Batched solvers use
    // this to retry exhausted lanes individually instead of failing a whole
    // batch.
    Err(SolverError::Exhausted {
        x,
        iterations: opts.max_iter,
        residual,
        contracting: residual < prev_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_contraction_converges() {
        // x = cos(x): Dottie number ≈ 0.739085.
        let c = solve_damped(
            vec![0.0],
            |x, out| out[0] = x[0].cos(),
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!((c.x[0] - 0.739_085_133_2).abs() < 1e-8);
    }

    #[test]
    fn oscillating_map_needs_damping() {
        // x = 10/x oscillates undamped (period 2); damping fixes it.
        let opts = FixedPointOptions {
            damping: 0.5,
            tol: 1e-12,
            max_iter: 10_000,
        };
        let c = solve_damped(vec![1.0], |x, out| out[0] = 10.0 / x[0], &opts).unwrap();
        assert!((c.x[0] - 10f64.sqrt()).abs() < 1e-9);

        let undamped = FixedPointOptions {
            damping: 1.0,
            tol: 1e-12,
            max_iter: 1_000,
        };
        let e = solve_damped(vec![1.0], |x, out| out[0] = 10.0 / x[0], &undamped);
        assert!(e.is_err(), "undamped iteration should oscillate forever");
    }

    #[test]
    fn exhaustion_returns_last_iterate_and_contraction_flag() {
        // A genuine contraction cut off early: the flag says "keep going"
        // and the iterate is partway to the fixed point.
        let opts = FixedPointOptions {
            damping: 0.5,
            tol: 1e-12,
            max_iter: 3,
        };
        let e = solve_damped(vec![0.0], |x, out| out[0] = x[0].cos(), &opts).unwrap_err();
        match e {
            SolverError::Exhausted {
                x,
                iterations,
                residual,
                contracting,
            } => {
                assert_eq!(iterations, 3);
                assert!(contracting, "cosine map contracts");
                assert!(residual > 0.0 && residual.is_finite());
                assert!(x[0] > 0.0, "iterate moved off the start: {}", x[0]);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }

        // An undamped period-2 oscillation: the flag reports the *final*
        // step, so cut the budget where the residual just swung back up
        // (odd budget: the last transition is low-phase → high-phase).
        let opts = FixedPointOptions {
            damping: 1.0,
            tol: 1e-12,
            max_iter: 101,
        };
        let e = solve_damped(vec![1.0], |x, out| out[0] = 10.0 / x[0], &opts).unwrap_err();
        match e {
            SolverError::Exhausted { contracting, .. } => {
                assert!(!contracting, "residual rose in the final step");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn vector_system() {
        // x = (y+1)/2, y = (x+1)/2  =>  x = y = 1.
        let c = solve_damped(
            vec![0.0, 0.0],
            |x, out| {
                out[0] = (x[1] + 1.0) / 2.0;
                out[1] = (x[0] + 1.0) / 2.0;
            },
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!((c.x[0] - 1.0).abs() < 1e-8);
        assert!((c.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn empty_state_rejected() {
        let e = solve_damped(vec![], |_, _| {}, &FixedPointOptions::default()).unwrap_err();
        assert!(matches!(e, SolverError::InvalidInput(_)));
    }

    #[test]
    fn invalid_damping_rejected() {
        let opts = FixedPointOptions {
            damping: 0.0,
            ..Default::default()
        };
        let e = solve_damped(vec![1.0], |x, out| out[0] = x[0], &opts).unwrap_err();
        assert!(matches!(e, SolverError::InvalidInput(_)));
    }

    #[test]
    fn nan_breakdown_detected() {
        let e = solve_damped(
            vec![1.0],
            |_, out| out[0] = f64::NAN,
            &FixedPointOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, SolverError::NumericalBreakdown { .. }));
    }

    #[test]
    fn already_converged_returns_zero_iterations() {
        let c = solve_damped(
            vec![2.0],
            |x, out| out[0] = x[0],
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert_eq!(c.iterations, 0);
        assert_eq!(c.x[0], 2.0);
    }
}
