//! Batched (structure-of-arrays) drivers for the scalar solvers.
//!
//! The LoPC hot path solves *many* nearly identical scenarios: a sweep is a
//! thousand fixed points, an interpolation-cell build is `2^k` corners plus
//! probes, a batch request is whatever the client sent. One
//! [`bisect`](crate::bisect) solve is latency-bound — each evaluation of the
//! model recursion is a short chain of dependent divisions, and the next
//! abscissa depends on the previous sign, so the divider sits idle most of
//! the time. Batching breaks that chain *across lanes*: every lane still
//! walks its own bracket/bisect state machine, but each round evaluates all
//! active lanes' abscissae back to back in one tight loop over
//! structure-of-arrays parameters, which the compiler can vectorize and the
//! CPU can pipeline (independent iterations hide division latency).
//!
//! Bit-identity is the contract, not an aspiration: per lane, the drivers
//! replay **exactly** the scalar control flow of
//! [`bracket_upward`](crate::bracket_upward) + [`bisect`](crate::bisect) and
//! [`solve_damped`](crate::solve_damped) — same evaluation points, same sign
//! tests, same early exits, same iteration counts, same errors. A lane's
//! result is the scalar result, bit for bit; only the *interleaving* of
//! evaluations across lanes changes (see DESIGN.md §14). Lanes retire
//! independently: a lane that converges, or fails, in round `i` costs
//! nothing in round `i + 1`.

use crate::bisection::Root;
use crate::fixed_point::{Convergence, FixedPointOptions};
use crate::SolverError;

/// Per-lane parameters of a batched bracket-then-bisect solve: the same
/// arguments the scalar pair [`bracket_upward`](crate::bracket_upward) /
/// [`bisect`](crate::bisect) takes, minus the function (supplied once for
/// the whole batch as a lane-indexed evaluator).
#[derive(Clone, Copy, Debug)]
pub struct BracketBisectSpec {
    /// Lower endpoint: `bracket_upward`'s `lo`, and later `bisect`'s `lo`.
    pub lo: f64,
    /// Initial bracketing step (doubled until the sign changes).
    pub initial_step: f64,
    /// Bracketing budget (`bracket_upward`'s `max_doublings`).
    pub max_doublings: usize,
    /// Absolute tolerance on the bisection interval width.
    pub tol: f64,
    /// Bisection iteration budget.
    pub max_iter: usize,
}

/// Phase tags of the bracket → bisect life cycle. Lane state is kept in
/// structure-of-arrays form (`tag`/`a`/`b`/`c`/`cnt`), dense in *active
/// order* and compacted alongside the lane list, rather than as an enum
/// indexed by lane: the advance loop runs once per lane per round, and both
/// gathers and `mem::replace` of a wide enum cost more than the model
/// evaluation they were bookkeeping for.
///
/// Field meaning by phase — `a`, `b`, `c` are reused:
///
/// | tag | meaning | a | b | c | cnt |
/// |---|---|---|---|---|---|
/// | `BRACKET` | doubling the step until `f ≤ 0` | step | — | — | doublings |
/// | `EVAL_LO` | bracketed at `b`; evaluating `f(lo)` | — | hi | f_hi | — |
/// | `BISECT` | bisecting `[a, b]` | lo | hi | f_lo | iter |
const BRACKET: u8 = 0;
const EVAL_LO: u8 = 1;
const BISECT: u8 = 2;

/// Solve many independent `f_l(x) = 0` problems by synchronized-round
/// bracket + bisect, one lane per spec.
///
/// `eval(lanes, xs, out)` must write `f_{lanes[j]}(xs[j])` into `out[j]` for
/// every `j` — the batched equivalent of the scalar closure, evaluated for
/// all lanes still in flight this round. The evaluator is called with the
/// active lanes in ascending order; because each lane's function must be
/// pure (the scalar solvers assume the same), the cross-lane interleaving
/// cannot change any lane's trajectory.
///
/// Per lane the result — root, iteration count, or error — is bit-identical
/// to
/// `bracket_upward(f, lo, initial_step, max_doublings)` followed by
/// `bisect(f, lo, hi, tol, max_iter)`, with the single economy that `f(hi)`
/// is not re-evaluated at the bracket point (purity makes the re-evaluation
/// the value already in hand).
pub fn bracket_bisect_many<F>(
    specs: &[BracketBisectSpec],
    mut eval: F,
) -> Vec<Result<Root, SolverError>>
where
    F: FnMut(&[u32], &[f64], &mut [f64]),
{
    let n = specs.len();
    let mut results: Vec<Option<Result<Root, SolverError>>> = (0..n).map(|_| None).collect();

    // Dense lane state, indexed by *active position* `j` (not lane id) and
    // compacted in lockstep with `active`: the hot advance loop streams
    // through contiguous memory with no gathers. `lo`/`tol`/`maxit` are
    // copies of the spec fields the steady state needs, so the fast pass
    // below never touches the 40-byte spec structs. `cnt` is f64 so the
    // whole pass is uniform double lanes for the auto-vectorizer (counts
    // stay exact: no solve runs anywhere near 2^53 rounds).
    let mut active = vec![0u32; n];
    let mut tag = vec![BRACKET; n];
    let mut a = vec![0.0f64; n];
    let mut b = vec![0.0f64; n];
    let mut c = vec![0.0f64; n];
    let mut cnt = vec![0.0f64; n];
    let mut lo = vec![0.0f64; n];
    let mut tol = vec![0.0f64; n];
    let mut maxit = vec![0.0f64; n];
    let mut xs = vec![0.0f64; n];
    let mut fs = vec![0.0f64; n];

    // Shadow buffers for the speculative fast pass: it writes next-round
    // state here and commits by pointer swap, so a lane that turns out to
    // retire can fall back to the untouched originals.
    let mut sh_a = vec![0.0f64; n];
    let mut sh_b = vec![0.0f64; n];
    let mut sh_c = vec![0.0f64; n];
    let mut sh_cnt = vec![0.0f64; n];
    let mut sh_xs = vec![0.0f64; n];

    // Entry checks, in scalar order: bracket_upward rejects a bad step
    // before evaluating anything.
    let mut m = 0usize;
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting on purpose
    for (l, spec) in specs.iter().enumerate() {
        if !(spec.initial_step > 0.0) {
            results[l] = Some(Err(SolverError::InvalidInput(
                "bracket_upward requires a positive initial step",
            )));
        } else if spec.max_doublings == 0 {
            // Scalar: the bracketing loop never runs.
            results[l] = Some(Err(SolverError::NoConvergence {
                iterations: 0,
                residual: spec.initial_step,
            }));
        } else {
            active[m] = l as u32;
            a[m] = spec.initial_step;
            lo[m] = spec.lo;
            tol[m] = spec.tol;
            maxit[m] = spec.max_iter as f64;
            xs[m] = spec.lo + spec.initial_step;
            m += 1;
        }
    }
    // Lanes still bracketing or awaiting f(lo); while any exist, rounds take
    // the general (scalar, per-phase) advance path.
    let mut nonbisect = m;

    while m > 0 {
        // One batched evaluation round: the hot loop lives in `eval`.
        eval(&active[..m], &xs[..m], &mut fs[..m]);

        if nonbisect == 0 {
            // Fast path: every lane is mid-bisection. Speculate that none
            // retires this round — the common case; a 1000-lane sweep runs
            // ~30 all-bisect rounds and only a handful with retirements —
            // and compute all updates branch-free into the shadow buffers
            // while OR-folding every retirement condition into one flag.
            // Branchless selects are exact here: both `f_mid` and `f_lo`
            // are nonzero non-NaN mid-bisection, so the scalar
            // `signum() == signum()` test is a sign-bit compare, and the
            // selected values are bit-identical to the scalar branches.
            let mut slow = false;
            {
                let (fs, a, b, c, cnt, tl, mi, xs) = (
                    &fs[..m],
                    &a[..m],
                    &b[..m],
                    &c[..m],
                    &cnt[..m],
                    &tol[..m],
                    &maxit[..m],
                    &xs[..m],
                );
                let (sa, sb, sc, scnt, sxs) = (
                    &mut sh_a[..m],
                    &mut sh_b[..m],
                    &mut sh_c[..m],
                    &mut sh_cnt[..m],
                    &mut sh_xs[..m],
                );
                for j in 0..m {
                    let f = fs[j];
                    let ncnt = cnt[j] + 1.0;
                    slow |= f.is_nan() | (f == 0.0) | (b[j] - a[j] < tl[j]) | (ncnt >= mi[j]);
                    let same = (f < 0.0) == (c[j] < 0.0);
                    let na = if same { xs[j] } else { a[j] };
                    let nb = if same { b[j] } else { xs[j] };
                    sa[j] = na;
                    sb[j] = nb;
                    sc[j] = if same { f } else { c[j] };
                    scnt[j] = ncnt;
                    sxs[j] = 0.5 * (na + nb);
                }
            }
            if !slow {
                std::mem::swap(&mut a, &mut sh_a);
                std::mem::swap(&mut b, &mut sh_b);
                std::mem::swap(&mut c, &mut sh_c);
                std::mem::swap(&mut cnt, &mut sh_cnt);
                std::mem::swap(&mut xs, &mut sh_xs);
                continue;
            }
            // Some lane retires (or exhausts its budget): discard the
            // speculative shadow state and let the general path below
            // replay the round from the untouched originals.
        }

        // General advance: each lane's scalar state machine, one lane at a
        // time, compacting retired lanes out of every dense array as we go.
        let mut write = 0usize;
        let mut nb_count = 0usize;
        for j in 0..m {
            let l = active[j] as usize;
            let spec = &specs[l];
            let x = xs[j];
            let v = fs[j];
            let mut done: Option<Result<Root, SolverError>> = None;
            let mut next_x = 0.0f64;
            let mut t = tag[j];
            let (mut aj, mut bj, mut cj, mut cntj) = (a[j], b[j], c[j], cnt[j]);
            match t {
                BRACKET => {
                    if v.is_nan() {
                        done = Some(Err(SolverError::NumericalBreakdown { at: x }));
                    } else if v <= 0.0 {
                        // Bracketed: x is the scalar `hi`. Run bisect's
                        // entry checks before spending an evaluation on
                        // f(lo).
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(spec.lo < x) {
                            done = Some(Err(SolverError::InvalidInput("bisect requires lo < hi")));
                        } else if !(spec.tol > 0.0) {
                            done = Some(Err(SolverError::InvalidInput("bisect requires tol > 0")));
                        } else {
                            t = EVAL_LO;
                            bj = x;
                            cj = v;
                            next_x = spec.lo;
                        }
                    } else {
                        let step = aj * 2.0;
                        if cntj as usize + 1 >= spec.max_doublings {
                            done = Some(Err(SolverError::NoConvergence {
                                iterations: spec.max_doublings,
                                residual: step,
                            }));
                        } else {
                            aj = step;
                            cntj += 1.0;
                            next_x = spec.lo + step;
                        }
                    }
                }
                EVAL_LO => {
                    let (f_lo, hi, f_hi) = (v, bj, cj);
                    if f_lo.is_nan() {
                        done = Some(Err(SolverError::NumericalBreakdown { at: spec.lo }));
                    } else if f_lo == 0.0 {
                        done = Some(Ok(Root {
                            x: spec.lo,
                            f: 0.0,
                            iterations: 0,
                        }));
                    } else if f_hi == 0.0 {
                        done = Some(Ok(Root {
                            x: hi,
                            f: 0.0,
                            iterations: 0,
                        }));
                    } else if f_lo.signum() == f_hi.signum() {
                        done = Some(Err(SolverError::NoBracket {
                            lo: spec.lo,
                            hi,
                            f_lo,
                            f_hi,
                        }));
                    } else if spec.max_iter == 0 {
                        // Scalar: the bisection loop never runs.
                        done = Some(Err(SolverError::NoConvergence {
                            iterations: 0,
                            residual: hi - spec.lo,
                        }));
                    } else {
                        t = BISECT;
                        aj = spec.lo;
                        cj = f_lo;
                        cntj = 0.0;
                        next_x = 0.5 * (aj + bj);
                    }
                }
                _ => {
                    let (mid, f_mid) = (x, v);
                    if f_mid.is_nan() {
                        done = Some(Err(SolverError::NumericalBreakdown { at: mid }));
                    } else if f_mid == 0.0 || bj - aj < spec.tol {
                        done = Some(Ok(Root {
                            x: mid,
                            f: f_mid,
                            iterations: cntj as usize + 1,
                        }));
                    } else {
                        // Same branchless select as the fast pass (see the
                        // exactness note there).
                        let same = (f_mid < 0.0) == (cj < 0.0);
                        aj = if same { mid } else { aj };
                        cj = if same { f_mid } else { cj };
                        bj = if same { bj } else { mid };
                        cntj += 1.0;
                        if cntj as usize >= spec.max_iter {
                            done = Some(Err(SolverError::NoConvergence {
                                iterations: spec.max_iter,
                                residual: bj - aj,
                            }));
                        } else {
                            next_x = 0.5 * (aj + bj);
                        }
                    }
                }
            }
            match done {
                Some(r) => results[l] = Some(r),
                None => {
                    active[write] = l as u32;
                    tag[write] = t;
                    a[write] = aj;
                    b[write] = bj;
                    c[write] = cj;
                    cnt[write] = cntj;
                    lo[write] = lo[j];
                    tol[write] = tol[j];
                    maxit[write] = maxit[j];
                    xs[write] = next_x;
                    nb_count += usize::from(t != BISECT);
                    write += 1;
                }
            }
        }
        m = write;
        nonbisect = nb_count;
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane retires with a result"))
        .collect()
}

/// Batched [`solve_damped`](crate::solve_damped): iterate many independent
/// vector fixed-point systems to joint convergence, with per-lane residuals
/// and independent retirement.
///
/// `f(lane, x, out)` must write `F_lane(x)` into `out` (same length as that
/// lane's `x0`). Lane state lives in one flat buffer (structure-of-arrays
/// across lanes), so the damping update runs as a single contiguous loop
/// over every active element regardless of lane count.
///
/// Per lane, the result is bit-identical to
/// `solve_damped(x0s[lane], |x, out| f(lane, x, out), opts)`: same iterate
/// sequence, same residual fold order, same convergence iteration, same
/// errors — including [`SolverError::Exhausted`] with the lane's last
/// iterate and contraction flag, so callers can retry exhausted lanes
/// individually instead of failing the whole batch.
pub fn solve_damped_many<F>(
    x0s: &[Vec<f64>],
    mut f: F,
    opts: &FixedPointOptions,
) -> Vec<Result<Convergence, SolverError>>
where
    F: FnMut(usize, &[f64], &mut [f64]),
{
    let n = x0s.len();
    let mut results: Vec<Option<Result<Convergence, SolverError>>> = (0..n).map(|_| None).collect();

    // Entry checks, in scalar order.
    for (l, x0) in x0s.iter().enumerate() {
        if x0.is_empty() {
            results[l] = Some(Err(SolverError::InvalidInput("empty state vector")));
        } else if !(opts.damping > 0.0 && opts.damping <= 1.0) {
            results[l] = Some(Err(SolverError::InvalidInput("damping must be in (0, 1]")));
        }
    }

    // Flat state: lane l owns x[offsets[l]..offsets[l + 1]].
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for x0 in x0s {
        offsets.push(offsets.last().unwrap() + x0.len());
    }
    let mut x: Vec<f64> = x0s.iter().flatten().copied().collect();
    let mut fx = vec![0.0; x.len()];
    let mut active: Vec<u32> = (0..n as u32)
        .filter(|&l| results[l as usize].is_none())
        .collect();
    let mut residuals = vec![f64::INFINITY; n];
    let mut prev_residuals = vec![f64::INFINITY; n];

    let mut iter = 0usize;
    while !active.is_empty() && iter < opts.max_iter {
        // Evaluate every active lane, then fold its residual in the scalar
        // order (NaN check before the max-update, first NaN wins).
        active.retain(|&lane| {
            let l = lane as usize;
            let (s, e) = (offsets[l], offsets[l + 1]);
            let (xs, fxs) = (&x[s..e], &mut fx[s..e]);
            f(l, xs, fxs);
            prev_residuals[l] = residuals[l];
            let mut residual = 0.0f64;
            for i in 0..xs.len() {
                if fxs[i].is_nan() {
                    results[l] = Some(Err(SolverError::NumericalBreakdown { at: xs[i] }));
                    return false;
                }
                let denom = xs[i].abs().max(1.0);
                residual = residual.max((fxs[i] - xs[i]).abs() / denom);
            }
            residuals[l] = residual;
            if residual < opts.tol {
                results[l] = Some(Ok(Convergence {
                    x: xs.to_vec(),
                    iterations: iter,
                    residual,
                }));
                return false;
            }
            true
        });

        // Damped update for the survivors — contiguous inner loops the
        // compiler can vectorize.
        let (one_minus_a, a) = (1.0 - opts.damping, opts.damping);
        for &lane in &active {
            let l = lane as usize;
            let (s, e) = (offsets[l], offsets[l + 1]);
            for i in s..e {
                x[i] = one_minus_a * x[i] + a * fx[i];
            }
        }
        iter += 1;
    }

    // Whoever is still in flight ran out of budget.
    for &lane in &active {
        let l = lane as usize;
        let (s, e) = (offsets[l], offsets[l + 1]);
        results[l] = Some(Err(SolverError::Exhausted {
            x: x[s..e].to_vec(),
            iterations: opts.max_iter,
            residual: residuals[l],
            contracting: residuals[l] < prev_residuals[l],
        }));
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane retires with a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bisect, bracket_upward, solve_damped};

    /// The scalar reference for one bracket + bisect lane.
    fn scalar_lane<F: FnMut(f64) -> f64>(
        mut f: F,
        spec: &BracketBisectSpec,
    ) -> Result<Root, SolverError> {
        let hi = bracket_upward(&mut f, spec.lo, spec.initial_step, spec.max_doublings)?;
        bisect(&mut f, spec.lo, hi, spec.tol, spec.max_iter)
    }

    /// A family of LoPC-shaped decreasing recursions g(r) = c/r − r + d,
    /// parameterised per lane.
    fn g(lane: usize, r: f64) -> f64 {
        let c = 100.0 + 37.0 * lane as f64;
        let d = 1.0 + (lane % 5) as f64;
        c / r - r + d
    }

    fn specs(n: usize) -> Vec<BracketBisectSpec> {
        (0..n)
            .map(|l| BracketBisectSpec {
                lo: 0.5 + 0.01 * l as f64,
                initial_step: 1.0 + (l % 3) as f64,
                max_doublings: 64,
                tol: 1e-10,
                max_iter: 200,
            })
            .collect()
    }

    #[test]
    fn lanes_match_scalar_bit_for_bit() {
        for n in [1usize, 2, 7, 64, 257] {
            let specs = specs(n);
            let batch = bracket_bisect_many(&specs, |lanes, xs, out| {
                for j in 0..lanes.len() {
                    out[j] = g(lanes[j] as usize, xs[j]);
                }
            });
            for (l, got) in batch.iter().enumerate() {
                let want = scalar_lane(|r| g(l, r), &specs[l]);
                match (got, &want) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.x.to_bits(), b.x.to_bits(), "lane {l} root");
                        assert_eq!(a.f.to_bits(), b.f.to_bits(), "lane {l} residual");
                        assert_eq!(a.iterations, b.iterations, "lane {l} iterations");
                    }
                    _ => assert_eq!(got, &want, "lane {l}"),
                }
            }
        }
    }

    #[test]
    fn error_lanes_retire_without_poisoning_the_batch() {
        // Lane 0: bad step. Lane 1: never brackets. Lane 2: NaN. Lane 3: fine.
        let specs = vec![
            BracketBisectSpec {
                lo: 1.0,
                initial_step: 0.0,
                max_doublings: 8,
                tol: 1e-10,
                max_iter: 100,
            },
            BracketBisectSpec {
                lo: 1.0,
                initial_step: 1.0,
                max_doublings: 4,
                tol: 1e-10,
                max_iter: 100,
            },
            BracketBisectSpec {
                lo: 1.0,
                initial_step: 1.0,
                max_doublings: 8,
                tol: 1e-10,
                max_iter: 100,
            },
            BracketBisectSpec {
                lo: 1.0,
                initial_step: 1.0,
                max_doublings: 64,
                tol: 1e-10,
                max_iter: 200,
            },
        ];
        let f = |lane: usize, x: f64| -> f64 {
            match lane {
                1 => 1.0,          // always positive: no bracket
                2 => f64::NAN,     // immediate breakdown
                _ => 50.0 / x - x, // ordinary root at sqrt(50)
            }
        };
        let batch = bracket_bisect_many(&specs, |lanes, xs, out| {
            for j in 0..lanes.len() {
                out[j] = f(lanes[j] as usize, xs[j]);
            }
        });
        for l in 0..specs.len() {
            let want = scalar_lane(|x| f(l, x), &specs[l]);
            assert_eq!(batch[l], want, "lane {l}");
        }
        assert!(batch[0].is_err() && batch[1].is_err() && batch[2].is_err());
        assert!(batch[3].is_ok());
    }

    #[test]
    fn damped_lanes_match_scalar_bit_for_bit() {
        // Mixed dimensions and mixed convergence speeds, including one lane
        // that converges instantly and one that exhausts the budget.
        let x0s: Vec<Vec<f64>> = vec![
            vec![0.0],           // cosine map
            vec![0.0, 0.0],      // coupled linear system
            vec![2.0],           // already converged
            vec![1.0],           // oscillator that exhausts
            vec![0.0, 0.0, 0.0], // three-variable contraction
        ];
        let apply = |lane: usize, x: &[f64], out: &mut [f64]| match lane {
            0 => out[0] = x[0].cos(),
            1 => {
                out[0] = 1.0 + x[1] / 2.0;
                out[1] = 1.0 + x[0] / 2.0;
            }
            2 => out[0] = x[0],
            3 => out[0] = 10.0 / x[0],
            _ => {
                out[0] = 0.5 * x[1] + 0.1;
                out[1] = 0.5 * x[2] + 0.1;
                out[2] = 0.5 * x[0] + 0.1;
            }
        };
        let opts = FixedPointOptions {
            damping: 1.0,
            tol: 1e-12,
            max_iter: 300,
        };
        let batch = solve_damped_many(&x0s, apply, &opts);
        for (l, got) in batch.iter().enumerate() {
            let want = solve_damped(x0s[l].clone(), |x, out| apply(l, x, out), &opts);
            match (got, &want) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.iterations, b.iterations, "lane {l}");
                    assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "lane {l}");
                    let bits = |v: &Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&a.x), bits(&b.x), "lane {l}");
                }
                _ => assert_eq!(got, &want, "lane {l}"),
            }
        }
        assert!(matches!(batch[3], Err(SolverError::Exhausted { .. })));
        assert!(batch[0].is_ok() && batch[1].is_ok() && batch[4].is_ok());
        assert_eq!(batch[2].as_ref().unwrap().iterations, 0);
    }

    #[test]
    fn damped_entry_checks_match_scalar() {
        let x0s: Vec<Vec<f64>> = vec![vec![], vec![1.0]];
        let out = solve_damped_many(
            &x0s,
            |_, x, out| out[0] = x[0],
            &FixedPointOptions::default(),
        );
        assert_eq!(out[0], Err(SolverError::InvalidInput("empty state vector")));
        assert!(out[1].is_ok());

        let bad = FixedPointOptions {
            damping: 0.0,
            ..Default::default()
        };
        let out = solve_damped_many(&[vec![1.0]], |_, x, out| out[0] = x[0], &bad);
        assert_eq!(
            out[0],
            Err(SolverError::InvalidInput("damping must be in (0, 1]"))
        );
    }

    #[test]
    fn empty_batches_are_fine() {
        assert!(bracket_bisect_many(&[], |_, _, _| {}).is_empty());
        assert!(solve_damped_many(&[], |_, _, _| {}, &FixedPointOptions::default()).is_empty());
    }
}
