//! Bisection root finding for monotone scalar equations.

use crate::SolverError;

/// A located root.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Root {
    /// Root abscissa.
    pub x: f64,
    /// Function value at `x` (≈ 0).
    pub f: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Find a root of `f` on `[lo, hi]` by bisection.
///
/// Requires a sign change on the interval (`f(lo)·f(hi) ≤ 0`). Infinite
/// function values are accepted at the endpoints (they carry a usable sign),
/// which matters for queueing recursions that blow up at saturation.
///
/// `tol` is an absolute tolerance on the interval width.
///
/// # Example
///
/// Solving a fixed-point equation `R = F(R)` as the root of `F(R) − R`,
/// the way the §5.3 response-time equation is solved:
///
/// ```
/// use lopc_solver::bisect;
///
/// let root = bisect(|r| 2000.0 / r - r, 1.0, 2000.0, 1e-10, 200).unwrap();
/// assert!((root.x - 2000f64.sqrt()).abs() < 1e-8);
/// ```
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(lo < hi)` is NaN-rejecting on purpose
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, SolverError> {
    if !(lo < hi) {
        return Err(SolverError::InvalidInput("bisect requires lo < hi"));
    }
    if !(tol > 0.0) {
        return Err(SolverError::InvalidInput("bisect requires tol > 0"));
    }
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo.is_nan() {
        return Err(SolverError::NumericalBreakdown { at: lo });
    }
    if f_hi.is_nan() {
        return Err(SolverError::NumericalBreakdown { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(Root {
            x: lo,
            f: 0.0,
            iterations: 0,
        });
    }
    if f_hi == 0.0 {
        return Ok(Root {
            x: hi,
            f: 0.0,
            iterations: 0,
        });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(SolverError::NoBracket { lo, hi, f_lo, f_hi });
    }

    for i in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid.is_nan() {
            return Err(SolverError::NumericalBreakdown { at: mid });
        }
        if f_mid == 0.0 || hi - lo < tol {
            return Ok(Root {
                x: mid,
                f: f_mid,
                iterations: i + 1,
            });
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(SolverError::NoConvergence {
        iterations: max_iter,
        residual: hi - lo,
    })
}

/// Starting from `lo` with `f(lo) > 0`, double the step until `f` turns
/// non-positive, returning an upper bracket. Used when only a lower bound on
/// the fixed point is known a priori (e.g. the contention-free response time).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(step > 0)` rejects NaN too
pub fn bracket_upward<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    initial_step: f64,
    max_doublings: usize,
) -> Result<f64, SolverError> {
    if !(initial_step > 0.0) {
        return Err(SolverError::InvalidInput(
            "bracket_upward requires a positive initial step",
        ));
    }
    let mut step = initial_step;
    for _ in 0..max_doublings {
        let hi = lo + step;
        let v = f(hi);
        if v.is_nan() {
            return Err(SolverError::NumericalBreakdown { at: hi });
        }
        if v <= 0.0 {
            return Ok(hi);
        }
        step *= 2.0;
    }
    Err(SolverError::NoConvergence {
        iterations: max_doublings,
        residual: step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!(r.iterations > 0);
    }

    #[test]
    fn exact_root_at_endpoint() {
        let r = bisect(|x| x - 1.0, 1.0, 2.0, 1e-9, 100).unwrap();
        assert_eq!(r.x, 1.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn detects_missing_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100).unwrap_err();
        assert!(matches!(e, SolverError::NoBracket { .. }));
    }

    #[test]
    fn rejects_inverted_interval() {
        let e = bisect(|x| x, 2.0, 1.0, 1e-9, 100).unwrap_err();
        assert!(matches!(e, SolverError::InvalidInput(_)));
    }

    #[test]
    fn handles_infinite_lower_endpoint() {
        // Mimics a queueing recursion that saturates below some R: g = +inf
        // at lo, negative at hi.
        let g = |x: f64| {
            if x < 1.0 {
                f64::INFINITY
            } else {
                2.0 - x
            }
        };
        let r = bisect(g, 0.5, 10.0, 1e-10, 200).unwrap();
        assert!((r.x - 2.0).abs() < 1e-8);
    }

    #[test]
    fn decreasing_function() {
        let r = bisect(|x| 5.0 - x, 0.0, 10.0, 1e-12, 100).unwrap();
        assert!((r.x - 5.0).abs() < 1e-10);
    }

    #[test]
    fn bracket_upward_doubles_until_sign_change() {
        let hi = bracket_upward(|x| 100.0 - x, 0.0, 1.0, 64).unwrap();
        assert!(hi >= 100.0);
    }

    #[test]
    fn bracket_upward_fails_for_always_positive() {
        let e = bracket_upward(|_| 1.0, 0.0, 1.0, 8).unwrap_err();
        assert!(matches!(e, SolverError::NoConvergence { .. }));
    }

    #[test]
    fn nan_reported_as_breakdown() {
        let e = bisect(|_| f64::NAN, 0.0, 1.0, 1e-9, 10).unwrap_err();
        assert!(matches!(e, SolverError::NumericalBreakdown { .. }));
    }
}
