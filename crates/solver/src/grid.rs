//! Integer-grid search utilities (optimal server allocation, §6).

/// Result of a grid argmax.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArgmaxResult {
    /// Argument achieving the maximum.
    pub arg: usize,
    /// The maximum value.
    pub value: f64,
}

/// Evaluate `f` on `lo..=hi` and return the argmax.
///
/// Ties resolve to the smallest argument. NaN values are skipped; if every
/// value is NaN the result is `None`.
pub fn argmax_usize<F: FnMut(usize) -> f64>(
    lo: usize,
    hi: usize,
    mut f: F,
) -> Option<ArgmaxResult> {
    if lo > hi {
        return None;
    }
    let mut best: Option<ArgmaxResult> = None;
    for arg in lo..=hi {
        let value = f(arg);
        if value.is_nan() {
            continue;
        }
        match best {
            Some(b) if b.value >= value => {}
            _ => best = Some(ArgmaxResult { arg, value }),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_concave_sequence() {
        // f(x) = -(x-7)^2 peaks at 7.
        let r = argmax_usize(0, 20, |x| -((x as f64 - 7.0).powi(2))).unwrap();
        assert_eq!(r.arg, 7);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn ties_resolve_low() {
        let r = argmax_usize(0, 5, |_| 1.0).unwrap();
        assert_eq!(r.arg, 0);
    }

    #[test]
    fn empty_range_is_none() {
        assert!(argmax_usize(5, 4, |_| 1.0).is_none());
    }

    #[test]
    fn nan_values_skipped() {
        let r = argmax_usize(0, 3, |x| if x == 2 { f64::NAN } else { x as f64 }).unwrap();
        assert_eq!(r.arg, 3);
    }

    #[test]
    fn all_nan_is_none() {
        assert!(argmax_usize(0, 3, |_| f64::NAN).is_none());
    }

    #[test]
    fn single_point_range() {
        let r = argmax_usize(4, 4, |x| x as f64).unwrap();
        assert_eq!(r.arg, 4);
        assert_eq!(r.value, 4.0);
    }
}
