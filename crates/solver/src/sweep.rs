//! Parallel parameter sweeps.
//!
//! Regenerating a figure means evaluating the model or the simulator at many
//! independent parameter points; this is an embarrassingly-parallel map. We
//! use std scoped threads so the closure can borrow from the caller (no
//! `'static` bound), chunking the index space evenly across the available
//! cores.

/// Parallel map over a slice of inputs, preserving order.
///
/// `f` is called once per item, potentially from different threads. Falls
/// back to a sequential map when the input is small or only one core is
/// available.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));

    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    // Split the output into contiguous chunks, one set of chunks per thread.
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ti, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let start = ti * chunk;
            let f = &f;
            let items = &items[start..start + out_chunk.len()];
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(items) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = par_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn borrows_from_caller() {
        let offset = 10usize;
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&x| x + offset);
        assert_eq!(out[5], 15);
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let par = par_map(&items, |&x| x.sin());
        let seq: Vec<f64> = items.iter().map(|&x| x.sin()).collect();
        assert_eq!(par, seq);
    }
}
