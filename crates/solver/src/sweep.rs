//! Parallel parameter sweeps.
//!
//! Regenerating a figure means evaluating the model or the simulator at many
//! independent parameter points; this is an embarrassingly-parallel map. We
//! use std scoped threads so the closure can borrow from the caller (no
//! `'static` bound), and distribute indices through the work-stealing
//! [`WorkQueue`] rather than static chunks: sweep
//! points have wildly unequal costs (a small-`P` simulation point can run
//! 10× longer than a large-`P` one), and static chunking serializes on the
//! unlucky thread that drew the expensive chunk.

use crate::steal::{worker_count, WorkQueue};

/// Parallel map over a slice of inputs, preserving order.
///
/// `f` is called once per item, potentially from different threads, with
/// items claimed dynamically in guided-size blocks so skewed workloads stay
/// balanced. Falls back to a sequential map when the input is small or only
/// one core is available.
///
/// # Example
///
/// ```
/// let xs: Vec<f64> = (0..100).map(f64::from).collect();
/// let squares = lopc_solver::par_map(&xs, |&x| x * x);
/// assert_eq!(squares[7], 49.0);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let queue = WorkQueue::new(items.len());
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = &queue;
            let f = &f;
            handles.push(scope.spawn(move || {
                // Results come back with their index: claimed blocks are not
                // contiguous per worker, so slots cannot be split up front.
                let mut local: Vec<(usize, R)> = Vec::new();
                while let Some(block) = queue.claim_block(workers) {
                    for i in block {
                        local.push((i, f(&items[i])));
                    }
                }
                local
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                out[i] = Some(r);
            }
        }
    });

    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = par_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn borrows_from_caller() {
        let offset = 10usize;
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&x| x + offset);
        assert_eq!(out[5], 15);
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let par = par_map(&items, |&x| x.sin());
        let seq: Vec<f64> = items.iter().map(|&x| x.sin()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn skewed_costs_still_complete_in_order() {
        // The first items are far more expensive than the rest (the fig6_2
        // shape); correctness must not depend on the claiming pattern.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let spins = if x < 4 { 2_000_000 } else { 1_000 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
