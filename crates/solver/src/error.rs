//! Error type shared by the numerical routines.

/// Why a numerical routine failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// The supplied interval does not bracket a root (no sign change).
    NoBracket {
        /// Left endpoint supplied.
        lo: f64,
        /// Right endpoint supplied.
        hi: f64,
        /// Function value at `lo`.
        f_lo: f64,
        /// Function value at `hi`.
        f_hi: f64,
    },
    /// The iteration did not converge within the allowed iterations.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// The function returned NaN during iteration.
    NumericalBreakdown {
        /// Point at which the breakdown occurred.
        at: f64,
    },
    /// An input argument was invalid (empty state vector, inverted interval…).
    InvalidInput(&'static str),
    /// A vector fixed-point iteration ran out of its iteration budget. Unlike
    /// [`SolverError::NoConvergence`] this carries the last iterate, so a
    /// caller can resume from it or inspect how close it got, and a
    /// `contracting` flag distinguishing "still converging, just slowly"
    /// (retry with a larger budget) from "oscillating or diverging" (retrying
    /// is pointless).
    Exhausted {
        /// The last iterate reached when the budget ran out.
        x: Vec<f64>,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
        /// True when the residual was still shrinking at exhaustion.
        contracting: bool,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::NoBracket { lo, hi, f_lo, f_hi } => write!(
                f,
                "no sign change on [{lo}, {hi}]: f(lo)={f_lo}, f(hi)={f_hi}"
            ),
            SolverError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:e})"
            ),
            SolverError::NumericalBreakdown { at } => {
                write!(f, "function returned NaN near x = {at}")
            }
            SolverError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SolverError::Exhausted {
                iterations,
                residual,
                contracting,
                ..
            } => write!(
                f,
                "iteration budget exhausted after {iterations} iterations \
                 (residual {residual:e}, {})",
                if *contracting {
                    "still contracting"
                } else {
                    "not contracting"
                }
            ),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SolverError::NoBracket {
            lo: 0.0,
            hi: 1.0,
            f_lo: 2.0,
            f_hi: 3.0,
        };
        assert!(e.to_string().contains("no sign change"));
        let e = SolverError::NoConvergence {
            iterations: 5,
            residual: 0.1,
        };
        assert!(e.to_string().contains("5 iterations"));
        let e = SolverError::NumericalBreakdown { at: 2.0 };
        assert!(e.to_string().contains("NaN"));
        let e = SolverError::InvalidInput("empty");
        assert!(e.to_string().contains("empty"));
        let e = SolverError::Exhausted {
            x: vec![1.0],
            iterations: 7,
            residual: 0.25,
            contracting: true,
        };
        assert!(e.to_string().contains("7 iterations"));
        assert!(e.to_string().contains("still contracting"));
    }
}
