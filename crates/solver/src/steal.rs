//! Work-stealing index distribution for parallel loops.
//!
//! The sweeps and replication runners used to split their index space into
//! one static contiguous chunk per core. That is optimal only when every
//! item costs the same; LoPC sweeps are *skewed* (small-`P` simulation
//! points run an order of magnitude longer than large-`P` ones, because
//! contention stretches the simulated horizon), so static chunking
//! serializes on whichever thread drew the expensive chunk.
//!
//! [`WorkQueue`] replaces the static split with atomic index claiming over a
//! shared cursor: idle workers keep stealing the next unclaimed index (or a
//! guided-size block of indices) until the space is exhausted, so the
//! wall-clock time tracks the *sum* of item costs divided by the core count
//! instead of the slowest chunk. See DESIGN.md §6.
//!
//! # Example
//!
//! ```
//! use lopc_solver::steal::WorkQueue;
//!
//! let q = WorkQueue::new(10);
//! let mut claimed = Vec::new();
//! while let Some(i) = q.claim() {
//!     claimed.push(i);
//! }
//! assert_eq!(claimed, (0..10).collect::<Vec<_>>());
//! assert!(q.claim().is_none());
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared claim cursor over the index space `0..len`.
///
/// Each index is handed out exactly once across all threads. Claims are
/// wait-free (`fetch_add`); share one queue per parallel loop by reference
/// (`&WorkQueue` is `Sync`).
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    len: usize,
}

impl WorkQueue {
    /// Queue over the index space `0..len`.
    pub fn new(len: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claim the next single index, or `None` when the space is exhausted.
    ///
    /// Use for expensive items (whole simulation runs) where per-item
    /// claiming overhead is negligible.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Claim a guided-size block of indices: roughly `remaining / (4·w)`
    /// where `w` is the worker count, never less than one index.
    ///
    /// Large blocks early amortize the atomic traffic; shrinking blocks near
    /// the tail keep the load balanced (guided self-scheduling). Use for
    /// cheap items such as single model evaluations.
    #[inline]
    pub fn claim_block(&self, workers: usize) -> Option<Range<usize>> {
        // The size estimate may be computed from a stale cursor; that only
        // changes the block size, never hands an index out twice.
        let seen = self.next.load(Ordering::Relaxed);
        let size = (self.len.saturating_sub(seen) / (4 * workers.max(1))).max(1);
        let start = self.next.fetch_add(size, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + size).min(self.len))
    }

    /// Re-arm the claim cursor so the same queue can distribute the index
    /// space again (the parallel simulator claims its LP set once per
    /// synchronization phase and reuses one queue per phase kind).
    ///
    /// Not synchronized with in-flight claims: callers must guarantee no
    /// thread is claiming concurrently — e.g. reset between two barrier
    /// waits, as the simulator's round driver does.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }

    /// Total size of the index space.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index space is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Number of worker threads for a parallel loop over `items` indices:
/// the available parallelism, never more than the item count (and at
/// least one). Shared policy for [`par_map`](crate::par_map) and the
/// simulator's replication runner.
pub fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn sequential_claims_cover_space_once() {
        let q = WorkQueue::new(5);
        let got: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(q.claim().is_none());
        assert!(q.claim().is_none(), "stays exhausted");
    }

    #[test]
    fn blocks_cover_space_exactly_once() {
        let q = WorkQueue::new(1000);
        let mut seen = vec![false; 1000];
        while let Some(r) = q.claim_block(4) {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index claimed");
    }

    #[test]
    fn blocks_shrink_towards_tail() {
        let q = WorkQueue::new(1024);
        let first = q.claim_block(4).unwrap();
        assert!(first.len() > 1, "early blocks amortize");
        // Drain almost everything.
        while q.claim_block(4).is_some_and(|r| r.end < 1024) {}
        // The cursor is exhausted; further claims fail.
        assert!(q.claim_block(4).is_none());
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let n = 10_000;
        let q = WorkQueue::new(n);
        let claimed = Mutex::new(vec![0u8; n]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(i) = q.claim() {
                        local.push(i);
                    }
                    let mut seen = claimed.lock().unwrap();
                    for i in local {
                        seen[i] += 1;
                    }
                });
            }
        });
        let seen = claimed.lock().unwrap();
        assert!(seen.iter().all(|&c| c == 1), "each index exactly once");
    }

    #[test]
    fn reset_rearms_an_exhausted_queue() {
        let q = WorkQueue::new(3);
        assert_eq!(
            std::iter::from_fn(|| q.claim()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(q.claim().is_none());
        q.reset();
        assert_eq!(
            std::iter::from_fn(|| q.claim()).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "a reset queue hands out the full space again"
        );
        // Reset mid-drain also restarts from zero.
        q.reset();
        assert_eq!(q.claim(), Some(0));
        q.reset();
        assert_eq!(q.claim(), Some(0));
    }

    #[test]
    fn reset_works_with_block_claims() {
        let q = WorkQueue::new(100);
        while q.claim_block(4).is_some() {}
        q.reset();
        let mut seen = [false; 100];
        while let Some(r) = q.claim_block(4) {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice after reset");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_queue() {
        let q = WorkQueue::new(0);
        assert!(q.is_empty());
        assert!(q.claim().is_none());
        assert!(q.claim_block(8).is_none());
    }

    #[test]
    fn worker_count_bounded_by_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }
}
