//! Minimal offline stand-in for the published `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro over functions whose arguments are drawn from
//!   range strategies (`2usize..64`, `0.0..500.0f64`, `0u64..1000`);
//! * an optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case
//!   with a formatted message.
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed (hash of the test name) so test runs are
//! reproducible, and shrinking is **minimal**: each argument is shrunk
//! toward its range start by greedy binary descent ([`Strategy::shrink`]),
//! round-robin across arguments until a fixpoint, so a failure reports both
//! the originally drawn case and a near-minimal failing case (exactly
//! minimal when failure is monotone in each argument separately).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generators usable on the left of `in` inside [`proptest!`].
pub trait Strategy {
    /// The generated type.
    type Value: Clone + PartialEq + std::fmt::Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    /// Shrink a failing value toward this strategy's simplest choice,
    /// keeping it failing.
    ///
    /// `still_fails(candidate)` must re-run the property with only this
    /// argument replaced and report whether it still fails. The default
    /// implementation does not shrink.
    fn shrink(
        &self,
        value: Self::Value,
        _still_fails: &mut dyn FnMut(Self::Value) -> bool,
    ) -> Self::Value {
        value
    }
}

/// Shrinking for integer ranges: greedy binary descent toward the range
/// start (the "first" — simplest — choice). From a failing `cur`, repeatedly
/// try `cur − step` (initially the full distance to the start, halved on
/// every candidate that passes); accept any candidate that still fails.
/// When failure is monotone in the argument this converges to the exactly
/// minimal failing value, and in general to a local minimum, in
/// `O(log range)` property evaluations.
macro_rules! int_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, mut cur: $t, still_fails: &mut dyn FnMut($t) -> bool) -> $t {
                let lo = self.start;
                let mut step = cur - lo;
                while step > 0 {
                    let cand = cur - step;
                    if still_fails(cand) {
                        cur = cand;
                        step = cur - lo;
                    } else {
                        step /= 2;
                    }
                }
                cur
            }
        }
    };
}

int_strategy!(usize);
int_strategy!(u64);
int_strategy!(u32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
    /// Same binary descent as the integer ranges, stopping once the step
    /// falls below a 1e-9 fraction of the range (floats have no exact
    /// minimum to land on) — or once the subtraction makes no representable
    /// progress (`cur - step` rounds back to `cur`, possible at large
    /// magnitudes where the step is below one ulp), which would otherwise
    /// loop forever.
    fn shrink(&self, mut cur: f64, still_fails: &mut dyn FnMut(f64) -> bool) -> f64 {
        let lo = self.start;
        let min_step = (self.end - self.start).abs() * 1e-9;
        let mut step = cur - lo;
        while step > min_step {
            let cand = cur - step;
            if cand == cur {
                break;
            }
            if still_fails(cand) {
                cur = cand;
                step = cur - lo;
            } else {
                step /= 2.0;
            }
        }
        cur
    }
}

/// Deterministic RNG for one named test (FNV-1a hash of the name as seed).
pub fn test_rng(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __drawn = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $($arg,)+
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __result {
                        // Shrink: walk each argument toward its range start
                        // (keeping the case failing), round-robin until no
                        // argument improves further.
                        $(let mut $arg = $arg;)+
                        let mut __progress = true;
                        while __progress {
                            __progress = false;
                            $(
                                {
                                    let __cand = $crate::Strategy::shrink(
                                        &($strat),
                                        ::core::clone::Clone::clone(&$arg),
                                        &mut |__shrink_cand| {
                                            let $arg = __shrink_cand;
                                            // A candidate that panics (instead of
                                            // returning a prop_assert Err) counts as
                                            // failing; the catch keeps the panic from
                                            // escaping mid-shrink and losing the
                                            // original failure report.
                                            ::std::panic::catch_unwind(
                                                ::std::panic::AssertUnwindSafe(|| {
                                                    let __r: ::core::result::Result<(), $crate::TestCaseError> =
                                                        (|| { $body ::core::result::Result::Ok(()) })();
                                                    __r.is_err()
                                                }),
                                            )
                                            .unwrap_or(true)
                                        },
                                    );
                                    if __cand != $arg {
                                        $arg = __cand;
                                        __progress = true;
                                    }
                                }
                            )+
                        }
                        let __minimal = format!(
                            concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                            $($arg,)+
                        );
                        // Re-run at the minimal case for its own message,
                        // falling back to the original error if the minimal
                        // case panics instead of failing the assertion (or
                        // if the property is flaky and no longer fails).
                        let __min_result = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(|| {
                                let __r: ::core::result::Result<(), $crate::TestCaseError> =
                                    (|| { $body ::core::result::Result::Ok(()) })();
                                __r
                            }),
                        );
                        let __msg = match __min_result {
                            ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                                e.to_string()
                            }
                            ::core::result::Result::Ok(::core::result::Result::Ok(())) => {
                                __e.to_string()
                            }
                            ::core::result::Result::Err(_) => {
                                format!("{__e} (the minimal case panics rather than failing the assertion)")
                            }
                        };
                        panic!(
                            "proptest case {}/{} failed: {}\n  drawn: {}\n  minimal: {}",
                            __case + 1, __cfg.cases, __msg, __drawn, __minimal
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 2usize..64,
            b in 0.0..500.0f64,
            c in 0u64..1000,
        ) {
            prop_assert!((2..64).contains(&a));
            prop_assert!((0.0..500.0).contains(&b), "b = {b}");
            prop_assert!(c < 1000);
        }

        #[test]
        fn eq_assertion_passes(x in 1usize..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let mut a = crate::test_rng("name");
        let mut b = crate::test_rng("name");
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = crate::test_rng("other");
        let _ = c.random::<u64>();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was only {x}");
            }
        }
        always_fails();
    }

    // -----------------------------------------------------------------
    // The shrinker itself
    // -----------------------------------------------------------------

    #[test]
    fn int_shrink_finds_exact_boundary_on_monotone_predicate() {
        // Failure is monotone (fails iff x >= 64): binary descent must land
        // exactly on the minimal failing value.
        let strat = 0usize..1000;
        let mut evals = 0usize;
        let shrunk = Strategy::shrink(&strat, 999, &mut |x| {
            evals += 1;
            x >= 64
        });
        assert_eq!(shrunk, 64);
        assert!(evals < 200, "descent must be logarithmic-ish, took {evals}");
    }

    #[test]
    fn int_shrink_respects_range_start() {
        // Everything fails: the minimum is the range start itself.
        let shrunk = Strategy::shrink(&(5u64..100), 73, &mut |_| true);
        assert_eq!(shrunk, 5);
        // Nothing else fails: the value stays put.
        let shrunk = Strategy::shrink(&(5u32..100), 73, &mut |x| x == 73);
        assert_eq!(shrunk, 73);
    }

    #[test]
    fn f64_shrink_terminates_on_sub_ulp_steps() {
        // Narrow range at large magnitude: min_step (1e-9 of the range) is
        // far below one ulp of the values, so candidate subtraction can
        // round back to `cur`. The no-representable-progress guard must
        // terminate the descent instead of looping forever.
        let strat = 1e9..(1e9 + 1.0f64);
        let boundary = 1e9 + 0.5;
        let shrunk = Strategy::shrink(&strat, 1e9 + 0.9, &mut |x| x >= boundary);
        assert!(shrunk >= boundary, "shrunk value must still fail");
        assert!(shrunk - boundary < 1e-3, "should approach the boundary");
    }

    #[test]
    fn panicking_shrink_candidates_are_contained() {
        // Drawn case fails via prop_assert; smaller candidates the shrinker
        // tries panic outright. The panic must count as "still failing" and
        // stay contained, preserving the drawn/minimal report. (The body
        // only panics for 0 < x < 64; draws for this test name start at
        // x >= 64, so the drawn case itself takes the prop_assert path.)
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn panics_below_sixty_four(x in 0usize..1000) {
                if x > 0 && x < 64 {
                    panic!("inner panic at {x}");
                }
                prop_assert!(x == 0, "x = {x} nonzero");
            }
        }
        let payload = std::panic::catch_unwind(panics_below_sixty_four)
            .expect_err("the drawn case must fail");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("minimal: x = 1,"),
            "shrinks through the panic region to its edge: {msg}"
        );
        assert!(
            msg.contains("panics rather than failing"),
            "fallback message expected when the minimal case panics: {msg}"
        );
    }

    #[test]
    fn f64_shrink_converges_to_boundary() {
        let strat = 0.0..100.0f64;
        let shrunk = Strategy::shrink(&strat, 90.0, &mut |x| x > 25.0);
        assert!(
            (shrunk - 25.0).abs() < 1e-5,
            "shrunk {shrunk} should approach the 25.0 boundary from above"
        );
        assert!(shrunk > 25.0, "the shrunk value must still fail");
    }

    #[test]
    fn shrunk_failure_reports_near_minimal_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn fails_above_64(x in 0usize..1000) {
                prop_assert!(x < 64, "x = {x} too big");
            }
        }
        let payload = std::panic::catch_unwind(fails_above_64)
            .expect_err("property must fail: every case can shrink to 64");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a formatted String");
        assert!(
            msg.contains("minimal: x = 64,"),
            "message must report the minimal case, got:\n{msg}"
        );
        assert!(msg.contains("drawn: x = "), "original case kept: {msg}");
    }

    #[test]
    fn multi_arg_shrink_minimises_each_argument() {
        // Fails iff a >= 10 && b >= 3: independent minima (10, 3).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn joint_failure(a in 0usize..500, b in 0u64..100) {
                prop_assert!(a < 10 || b < 3, "a = {a}, b = {b}");
            }
        }
        let payload = std::panic::catch_unwind(joint_failure)
            .expect_err("64 cases over these ranges always hit a failing one");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("minimal: a = 10, b = 3,"),
            "both arguments must shrink to their joint minimum: {msg}"
        );
    }

    #[test]
    fn passing_properties_never_invoke_shrinking() {
        // (Indirect: a property that would panic on re-entry with a smaller
        // value passes untouched when it never fails.)
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn never_fails(x in 50usize..60) {
                prop_assert!((50..60).contains(&x));
            }
        }
        never_fails();
    }
}
