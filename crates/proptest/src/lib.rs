//! Minimal offline stand-in for the published `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro over functions whose arguments are drawn from
//!   range strategies (`2usize..64`, `0.0..500.0f64`, `0u64..1000`);
//! * an optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case
//!   with a formatted message.
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed (hash of the test name) so test runs are
//! reproducible, and there is **no shrinking** — a failure reports the
//! drawn values of the failing case instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generators usable on the left of `in` inside [`proptest!`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut SmallRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut SmallRng) -> u32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// Deterministic RNG for one named test (FNV-1a hash of the name as seed).
pub fn test_rng(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __drawn = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $($arg,)+
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  drawn: {}",
                            __case + 1, __cfg.cases, __e, __drawn
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 2usize..64,
            b in 0.0..500.0f64,
            c in 0u64..1000,
        ) {
            prop_assert!((2..64).contains(&a));
            prop_assert!((0.0..500.0).contains(&b), "b = {b}");
            prop_assert!(c < 1000);
        }

        #[test]
        fn eq_assertion_passes(x in 1usize..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let mut a = crate::test_rng("name");
        let mut b = crate::test_rng("name");
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = crate::test_rng("other");
        let _ = c.random::<u64>();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was only {x}");
            }
        }
        always_fails();
    }
}
