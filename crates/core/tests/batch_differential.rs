//! Differential suite pinning `scenario::solve_batch` bit-identical to the
//! scalar `scenario::solve`, lane for lane: every variant, mixed-variant
//! batches, lane counts {1, 7, 64, 1000}, shuffled lane orders, and error
//! lanes riding in the middle of healthy batches.
//!
//! "Bit-identical" is literal: every `f64` component is compared through
//! `to_bits`, so NaN components (the General model's unpopulated fields)
//! and signed zeros must match too, as must the error *variant and payload*
//! of failing lanes.

use lopc_core::scenario::{solve, solve_batch, Scenario};
use lopc_core::{GeneralModel, Machine, ModelError, Prediction};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bitwise lane comparison; returns a description of the first divergence.
fn same_lane(
    b: &Result<Prediction, ModelError>,
    a: &Result<Prediction, ModelError>,
) -> Result<(), String> {
    match (b, a) {
        (Ok(b), Ok(a)) => {
            for (name, bv, av) in [
                ("r", b.r, a.r),
                ("x", b.x, a.x),
                ("rw", b.rw, a.rw),
                ("rq", b.rq, a.rq),
                ("ry", b.ry, a.ry),
                ("contention", b.contention, a.contention),
            ] {
                if bv.to_bits() != av.to_bits() {
                    return Err(format!("{name}: batched {bv:?} vs scalar {av:?}"));
                }
            }
            if b.ps != a.ps {
                return Err(format!("ps: batched {:?} vs scalar {:?}", b.ps, a.ps));
            }
            if b.iterations != a.iterations {
                return Err(format!(
                    "iterations: batched {} vs scalar {}",
                    b.iterations, a.iterations
                ));
            }
            Ok(())
        }
        (Err(b), Err(a)) if b == a => Ok(()),
        (b, a) => Err(format!("batched {b:?} vs scalar {a:?}")),
    }
}

/// Batch-vs-scalar over a whole lane vector.
fn lanes_match(scenarios: &[Scenario]) -> Result<(), String> {
    let batched = solve_batch(scenarios);
    assert_eq!(batched.len(), scenarios.len());
    for (i, (s, b)) in scenarios.iter().zip(&batched).enumerate() {
        same_lane(b, &solve(s)).map_err(|e| format!("lane {i} ({}): {e}", s.kind()))?;
    }
    Ok(())
}

/// In-place Fisher–Yates with the given rng.
fn shuffle(v: &mut [Scenario], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0u32..(i as u32 + 1)) as usize;
        v.swap(i, j);
    }
}

/// One random scenario. `variant` selects among the five kinds; `cheap_amva`
/// caps the AMVA machine size so 1000-lane batches stay fast in debug
/// builds (the damped fixed point is O(p²) per iteration).
fn random_scenario(rng: &mut SmallRng, variant: u32, cheap_amva: bool) -> Scenario {
    let p = match rng.random_range(0u32..3) {
        0 => 4,
        1 => 8,
        _ => 32,
    };
    let s_l = [0.0, 25.0, 50.3][rng.random_range(0u32..3) as usize];
    let s_o = [131.0, 200.0, 777.7, 95.0][rng.random_range(0u32..4) as usize];
    let c2 = [0.0, 1.0, 2.5][rng.random_range(0u32..3) as usize];
    let machine = Machine::new(p, s_l, s_o).with_c2(c2);
    let w = rng.random_range(0.0..5000.0f64);
    match variant % 5 {
        0 => Scenario::AllToAll { machine, w },
        1 => {
            let ps = if rng.random_bool(0.5) {
                None
            } else {
                Some(1 + rng.random_range(0u32..(p as u32 - 1)) as usize)
            };
            Scenario::ClientServer { machine, w, ps }
        }
        2 => {
            let k = 1 + rng.random_range(0u32..(p as u32 - 1).min(6));
            Scenario::ForkJoin { machine, w, k }
        }
        3 => {
            let m = if cheap_amva {
                Machine::new(4, s_l, s_o).with_c2(c2)
            } else {
                machine
            };
            if rng.random_bool(0.5) {
                Scenario::General(GeneralModel::homogeneous_all_to_all(m, w))
            } else {
                let servers = 1 + rng.random_range(0u32..(m.p as u32 - 1).min(3)) as usize;
                Scenario::General(GeneralModel::client_server(m, w, servers))
            }
        }
        _ => {
            let m = if cheap_amva {
                Machine::new(4, s_l, s_o).with_c2(c2)
            } else {
                machine
            };
            Scenario::SharedMemory { machine: m, w }
        }
    }
}

/// Lanes that fail or short-circuit in the scalar path: validation errors,
/// degenerate machines, `So = 0` closed forms.
fn edge_scenario(rng: &mut SmallRng, variant: u32) -> Scenario {
    let good = Machine::new(8, 25.0, 200.0).with_c2(0.0);
    match variant % 6 {
        0 => Scenario::AllToAll {
            machine: good,
            w: -1.0,
        },
        1 => Scenario::AllToAll {
            machine: Machine::new(1, 25.0, 200.0),
            w: 10.0,
        },
        2 => Scenario::ClientServer {
            machine: good,
            w: 100.0,
            ps: Some(8),
        },
        3 => Scenario::AllToAll {
            machine: Machine::new(8, 10.0, 0.0),
            w: rng.random_range(0.0..100.0f64),
        },
        4 => Scenario::ClientServer {
            machine: Machine::new(8, 10.0, 0.0),
            w: rng.random_range(0.0..100.0f64),
            ps: None,
        },
        _ => Scenario::AllToAll {
            machine: Machine::new(8, 0.0, 0.0),
            w: 0.0,
        },
    }
}

/// Build a lane vector of the requested size: all five variants cycling,
/// with an edge-case lane every 9th slot.
fn build_lanes(count: usize, rng: &mut SmallRng) -> Vec<Scenario> {
    let cheap_amva = count >= 256;
    (0..count)
        .map(|i| {
            if i % 9 == 8 {
                edge_scenario(rng, i as u32)
            } else {
                random_scenario(rng, i as u32, cheap_amva)
            }
        })
        .collect()
}

/// The ISSUE matrix: lane counts {1, 7, 64, 1000}, each checked in build
/// order and in shuffled orders.
#[test]
fn lane_counts_and_shuffled_orders_match_scalar() {
    for &count in &[1usize, 7, 64, 1000] {
        let mut rng = SmallRng::seed_from_u64(0xC0FF_EE00 ^ count as u64);
        let mut lanes = build_lanes(count, &mut rng);
        lanes_match(&lanes).unwrap_or_else(|e| panic!("count {count}: {e}"));
        let shuffles = if count >= 256 { 1 } else { 3 };
        for round in 0..shuffles {
            shuffle(&mut lanes, &mut rng);
            lanes_match(&lanes).unwrap_or_else(|e| panic!("count {count} shuffle {round}: {e}"));
        }
    }
}

/// Every variant alone in a single-lane batch, across a parameter sweep —
/// the degenerate batch must not take a different path from the scalar.
#[test]
fn single_lane_batches_match_scalar_per_variant() {
    let mut rng = SmallRng::seed_from_u64(7);
    for variant in 0..5u32 {
        for _ in 0..12 {
            let s = random_scenario(&mut rng, variant, false);
            lanes_match(std::slice::from_ref(&s)).unwrap_or_else(|e| panic!("{s:?}: {e}"));
        }
    }
    for variant in 0..6u32 {
        let s = edge_scenario(&mut rng, variant);
        lanes_match(std::slice::from_ref(&s)).unwrap_or_else(|e| panic!("{s:?}: {e}"));
    }
}

/// A batch that is all duplicates of one scenario: every lane must carry
/// the identical answer (the serve-layer dedup relies on this).
#[test]
fn duplicate_lanes_all_carry_the_same_answer() {
    let s = Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    };
    let lanes: Vec<Scenario> = std::iter::repeat_with(|| s.clone()).take(33).collect();
    let batched = solve_batch(&lanes);
    let scalar = solve(&s);
    for b in &batched {
        same_lane(b, &scalar).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized mixed batches: any seed, any size up to 48 lanes.
    #[test]
    fn random_mixed_batches_match(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let count = 1 + rng.random_range(0u32..48) as usize;
        let lanes = build_lanes(count, &mut rng);
        let res = lanes_match(&lanes);
        prop_assert!(res.is_ok(), "seed {}: {}", seed, res.unwrap_err());
    }

    /// A W sweep through one machine — the serving layer's hottest shape —
    /// stays exact at any sweep length.
    #[test]
    fn w_sweeps_match(w0 in 0.0..2000.0f64, step in 0.1..50.0f64, n in 1u32..128) {
        let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
        let lanes: Vec<Scenario> = (0..n)
            .map(|i| Scenario::AllToAll { machine, w: w0 + step * i as f64 })
            .collect();
        let res = lanes_match(&lanes);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }
}
