//! The LoPC model: **Lo**gP + **C**ontention.
//!
//! LoPC (Frank, 1997) predicts the total runtime of fine-grain message-
//! passing programs *including contention for processor resources*, from the
//! same parameters a LogP analysis produces:
//!
//! | LoPC | LogP | Meaning |
//! |------|------|---------|
//! | `St` | `L`  | average wire time (latency) in the interconnect |
//! | `So` | `o`  | average cost of message dispatch (interrupt + handler) |
//! | —    | `g`  | peak processor-to-network bandwidth gap (assumed 0) |
//! | `P`  | `P`  | number of processors |
//! | `C²` | —    | squared coefficient of variation of handler service time (optional) |
//!
//! plus the per-algorithm parameters `W` (average work between blocking
//! requests) and `n` (requests per node). See [`Machine`] and [`Algorithm`].
//!
//! Three model variants are provided:
//!
//! * [`AllToAll`] — the homogeneous all-to-all pattern of §5, solved in
//!   closed form via the scalar recursion `F[R]` (eq. 5.11), with the tight
//!   bounds of eq. 5.12 (`W + 2St + 2So < R* < W + 2St + 3.46·So` for
//!   `C² = 0`) and the "contention ≈ one extra handler" rule of thumb;
//! * [`ClientServer`] — the work-pile analysis of §6, including the optimal
//!   server count of eq. 6.8 and throughput for any server allocation;
//! * [`GeneralModel`] — the full per-node AMVA of Appendix A with arbitrary
//!   routing matrices, multi-hop requests, idle (server) threads, and the
//!   shared-memory **protocol processor** variant (`Rw = W`, §5.1);
//! * [`ForkJoin`] — the §7 *future work* extension: non-blocking fan-out of
//!   `k` overlapped requests per cycle (an explicit approximation, validated
//!   empirically; see the module docs).
//!
//! All variants rest on the same three approximations: Bard's approximation
//! to the Arrival Theorem, the BKT preempt-resume priority approximation for
//! compute-thread interference, and the residual-life `(C²−1)/2 · U`
//! correction for non-exponential handlers (§5.2).
//!
//! The [`scenario`] module unifies the four variants behind one data type:
//! [`Scenario`] describes a prediction request, [`scenario::solve`] returns
//! the common [`Prediction`] shape — the entry point the `lopc-serve`
//! prediction service and the bench experiments dispatch through.
//!
//! # Quickstart
//!
//! ```
//! use lopc_core::{Machine, AllToAll};
//!
//! // 32 processors, wire time 25 cycles, handlers of 200 cycles, constant
//! // service (C² = 0) — the Figure 5-2 configuration.
//! let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
//! let model = AllToAll::new(machine, 1000.0); // W = 1000 cycles of work
//! let sol = model.solve().unwrap();
//!
//! // The fixed point obeys the paper's bounds.
//! assert!(sol.r > model.contention_free());
//! assert!(sol.r < model.upper_bound() + 1e-9);
//! // ... and contention costs about one extra handler.
//! assert!((sol.contention - 200.0).abs() < 100.0);
//! ```

pub mod all_to_all;
pub mod client_server;
pub mod error;
pub mod fork_join;
pub mod general;
pub mod logp;
pub mod params;
pub mod scenario;
mod scenario_batch;

pub use all_to_all::{AllToAll, AllToAllSolution};
pub use client_server::{ClientServer, CsPoint};
pub use error::ModelError;
pub use fork_join::{ForkJoin, ForkJoinSolution};
pub use general::{GeneralModel, GeneralSolution};
pub use logp::LogPParams;
pub use params::{Algorithm, Machine};
pub use scenario::{solve, solve_batch, Prediction, Scenario};

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc example, kept as a real test.
    #[test]
    fn quickstart_holds() {
        let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
        let model = AllToAll::new(machine, 1000.0);
        let sol = model.solve().unwrap();
        assert!(sol.r > model.contention_free());
        assert!(sol.r < model.upper_bound() + 1e-9);
        assert!((sol.contention - 200.0).abs() < 100.0);
    }
}
