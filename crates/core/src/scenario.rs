//! The unified scenario API: one request representation and one entry point
//! for every LoPC model variant.
//!
//! The four model types ([`AllToAll`], [`ClientServer`], [`GeneralModel`],
//! [`ForkJoin`]) each expose their own constructor and solution type — the
//! right interface for writing analysis code, but the wrong one for a
//! serving layer, a cache, or any caller that receives "a prediction
//! request" at runtime. [`Scenario`] is the closed data description of such
//! a request, [`Prediction`] the common result shape, and [`solve`] the
//! single dispatch that maps one to the other. `lopc-serve` builds its wire
//! schema, cache keys and endpoints directly on these types, and the bench
//! experiments use the same dispatch so the service answers are the
//! library's answers by construction.
//!
//! # Example
//!
//! ```
//! use lopc_core::scenario::{solve, Scenario};
//! use lopc_core::Machine;
//!
//! let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
//! let pred = solve(&Scenario::AllToAll { machine, w: 1000.0 }).unwrap();
//! // Identical to AllToAll::new(machine, 1000.0).solve().
//! assert!(pred.r > machine.contention_free_response(1000.0));
//! ```

use crate::all_to_all::AllToAll;
use crate::client_server::ClientServer;
use crate::error::ModelError;
use crate::fork_join::ForkJoin;
use crate::general::GeneralModel;
use crate::params::Machine;

/// One prediction request: which model variant, with which parameters.
///
/// The enum is the single source of truth for the serving layer's wire
/// schema (`lopc-serve` encodes exactly these fields) and for cache-key
/// derivation, so new variants added here flow to the service by extending
/// one `match` per layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Scenario {
    /// Homogeneous all-to-all (§5 closed form).
    AllToAll {
        /// Architectural parameters.
        machine: Machine,
        /// Work between requests.
        w: f64,
    },
    /// Work-pile client–server (§6) at an explicit split, or at the eq. 6.8
    /// optimum when `ps` is `None`.
    ClientServer {
        /// Architectural parameters (`P` is the total node count).
        machine: Machine,
        /// Work per chunk.
        w: f64,
        /// Server count; `None` solves at the optimal allocation.
        ps: Option<usize>,
    },
    /// Fork-join fan-out of `k` overlapped requests per cycle (§7 extension).
    ForkJoin {
        /// Architectural parameters.
        machine: Machine,
        /// Work between request batches.
        w: f64,
        /// Requests per cycle.
        k: u32,
    },
    /// The full Appendix A per-node AMVA with arbitrary routing.
    General(GeneralModel),
    /// Shared-memory variant (§5.1): homogeneous all-to-all on a machine
    /// with per-node protocol processors (`Rw = W`).
    SharedMemory {
        /// Architectural parameters.
        machine: Machine,
        /// Work between requests.
        w: f64,
    },
}

impl Scenario {
    /// Short stable name of the variant (wire `"kind"` field, metrics
    /// labels).
    pub fn kind(&self) -> &'static str {
        match self {
            Scenario::AllToAll { .. } => "all_to_all",
            Scenario::ClientServer { .. } => "client_server",
            Scenario::ForkJoin { .. } => "fork_join",
            Scenario::General(_) => "general",
            Scenario::SharedMemory { .. } => "shared_memory",
        }
    }

    /// Validate without solving (the service rejects bad requests early).
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Scenario::AllToAll { machine, w } => AllToAll::new(*machine, *w).validate(),
            Scenario::ClientServer { machine, w, ps } => {
                let model = ClientServer::new(*machine, *w);
                model.validate()?;
                if let Some(ps) = ps {
                    if *ps == 0 || *ps >= machine.p {
                        return Err(ModelError::InvalidParameter("ps must be in 1..=P-1"));
                    }
                }
                Ok(())
            }
            Scenario::ForkJoin { machine, w, k } => ForkJoin::new(*machine, *w, *k).validate(),
            Scenario::General(model) => model.validate(),
            Scenario::SharedMemory { machine, w } => {
                GeneralModel::homogeneous_all_to_all(*machine, *w)
                    .with_protocol_processor()
                    .validate()
            }
        }
    }
}

/// The common shape of a solved scenario: the Figure 4-4 response-time
/// decomposition plus throughput, for whichever variant produced it.
///
/// Components a variant does not define are `NaN` (`rw`/`rq`/`ry` for the
/// multi-thread [`GeneralModel`] report only node-0 — the mean over nodes is
/// in `r`); consumers must treat `NaN` as "not applicable", and the serve
/// JSON codec encodes it as `null`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Mean cycle response time `R` (mean over active threads for the
    /// general model).
    pub r: f64,
    /// System throughput `X` (cycles per unit time over the whole machine).
    pub x: f64,
    /// Compute residence `Rw`.
    pub rw: f64,
    /// Request-handler response `Rq`.
    pub rq: f64,
    /// Reply-handler response `Ry`.
    pub ry: f64,
    /// Contention cost `R − (contention-free R)`.
    pub contention: f64,
    /// Servers used (client-server scenarios only, else `None`).
    pub ps: Option<usize>,
    /// Solver iterations.
    pub iterations: usize,
}

/// Solve one scenario through the variant's own entry point.
///
/// This is *the* dispatch: every number it returns is computed by the same
/// code path a direct library call would take, so service answers and
/// library answers are bit-identical (the `serve_vs_library` integration
/// test pins this).
pub fn solve(scenario: &Scenario) -> Result<Prediction, ModelError> {
    match scenario {
        Scenario::AllToAll { machine, w } => {
            let sol = AllToAll::new(*machine, *w).solve()?;
            Ok(Prediction {
                r: sol.r,
                x: machine.p as f64 * sol.x_per_node,
                rw: sol.rw,
                rq: sol.rq,
                ry: sol.ry,
                contention: sol.contention,
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::ClientServer { machine, w, ps } => {
            let model = ClientServer::new(*machine, *w);
            let ps = match ps {
                Some(ps) => *ps,
                None => model.optimal_servers()?,
            };
            let pt = model.throughput(ps)?;
            // Clients compute uninterrupted (Rw = W) and handle exactly one
            // reply per cycle (Ry = So) in the §6 analysis.
            Ok(Prediction {
                r: pt.r,
                x: pt.x,
                rw: *w,
                rq: pt.rq,
                ry: machine.s_o,
                contention: pt.r - machine.contention_free_response(*w),
                ps: Some(ps),
                iterations: 0,
            })
        }
        Scenario::ForkJoin { machine, w, k } => {
            let sol = ForkJoin::new(*machine, *w, *k).solve()?;
            Ok(Prediction {
                r: sol.r,
                x: machine.p as f64 / sol.r,
                rw: sol.rw,
                rq: sol.rq,
                ry: sol.ry,
                contention: sol.r - ForkJoin::new(*machine, *w, *k).contention_free(),
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::General(model) => {
            let sol = model.solve()?;
            Ok(Prediction {
                r: sol.mean_r(),
                x: sol.system_throughput(),
                rw: f64::NAN,
                rq: f64::NAN,
                ry: f64::NAN,
                contention: f64::NAN,
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::SharedMemory { machine, w } => {
            let sol = GeneralModel::homogeneous_all_to_all(*machine, *w)
                .with_protocol_processor()
                .solve()?;
            // Homogeneous: every node is identical, so node 0 is the system.
            Ok(Prediction {
                r: sol.r[0],
                x: sol.system_throughput(),
                rw: sol.rw[0],
                rq: sol.rq[0],
                ry: sol.ry[0],
                contention: sol.r[0] - machine.contention_free_response(*w),
                ps: None,
                iterations: sol.iterations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    /// The dispatch is the direct call, number for number.
    #[test]
    fn all_to_all_matches_direct() {
        let s = Scenario::AllToAll {
            machine: machine(),
            w: 1000.0,
        };
        let p = solve(&s).unwrap();
        let direct = AllToAll::new(machine(), 1000.0).solve().unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.rw, direct.rw);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ry, direct.ry);
        assert_eq!(p.contention, direct.contention);
        assert_eq!(p.x, 32.0 * direct.x_per_node);
    }

    #[test]
    fn client_server_explicit_split_matches_direct() {
        let s = Scenario::ClientServer {
            machine: machine(),
            w: 1000.0,
            ps: Some(5),
        };
        let p = solve(&s).unwrap();
        let direct = ClientServer::new(machine(), 1000.0).throughput(5).unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.x, direct.x);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ps, Some(5));
    }

    #[test]
    fn client_server_default_split_is_the_optimum() {
        let s = Scenario::ClientServer {
            machine: machine(),
            w: 1000.0,
            ps: None,
        };
        let p = solve(&s).unwrap();
        let opt = ClientServer::new(machine(), 1000.0)
            .optimal_servers()
            .unwrap();
        assert_eq!(p.ps, Some(opt));
        assert_eq!(
            p.x,
            ClientServer::new(machine(), 1000.0)
                .throughput(opt)
                .unwrap()
                .x
        );
    }

    #[test]
    fn fork_join_matches_direct() {
        let s = Scenario::ForkJoin {
            machine: machine(),
            w: 2000.0,
            k: 4,
        };
        let p = solve(&s).unwrap();
        let direct = ForkJoin::new(machine(), 2000.0, 4).solve().unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ry, direct.ry);
    }

    #[test]
    fn general_matches_direct() {
        let model = GeneralModel::client_server(machine(), 800.0, 4);
        let s = Scenario::General(model.clone());
        let p = solve(&s).unwrap();
        let direct = model.solve().unwrap();
        assert_eq!(p.r, direct.mean_r());
        assert_eq!(p.x, direct.system_throughput());
        assert!(p.rw.is_nan() && p.rq.is_nan() && p.ry.is_nan());
    }

    #[test]
    fn shared_memory_is_the_protocol_processor_variant() {
        let s = Scenario::SharedMemory {
            machine: machine(),
            w: 800.0,
        };
        let p = solve(&s).unwrap();
        let direct = GeneralModel::homogeneous_all_to_all(machine(), 800.0)
            .with_protocol_processor()
            .solve()
            .unwrap();
        assert_eq!(p.r, direct.r[0]);
        // Protocol processor: compute is never interrupted.
        assert!((p.rw - 800.0).abs() < 1e-9);
        // And it beats the message-passing variant.
        let mp = solve(&Scenario::AllToAll {
            machine: machine(),
            w: 800.0,
        })
        .unwrap();
        assert!(p.r < mp.r);
    }

    #[test]
    fn kinds_are_stable() {
        let m = machine();
        assert_eq!(
            Scenario::AllToAll { machine: m, w: 1.0 }.kind(),
            "all_to_all"
        );
        assert_eq!(
            Scenario::ClientServer {
                machine: m,
                w: 1.0,
                ps: None
            }
            .kind(),
            "client_server"
        );
        assert_eq!(
            Scenario::ForkJoin {
                machine: m,
                w: 1.0,
                k: 2
            }
            .kind(),
            "fork_join"
        );
        assert_eq!(
            Scenario::General(GeneralModel::homogeneous_all_to_all(m, 1.0)).kind(),
            "general"
        );
        assert_eq!(
            Scenario::SharedMemory { machine: m, w: 1.0 }.kind(),
            "shared_memory"
        );
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let bad_machine = Machine::new(1, 25.0, 200.0);
        assert!(Scenario::AllToAll {
            machine: bad_machine,
            w: 1.0
        }
        .validate()
        .is_err());
        assert!(Scenario::ClientServer {
            machine: machine(),
            w: 1.0,
            ps: Some(32)
        }
        .validate()
        .is_err());
        assert!(Scenario::ForkJoin {
            machine: machine(),
            w: 1.0,
            k: 0
        }
        .validate()
        .is_err());
        assert!(Scenario::AllToAll {
            machine: machine(),
            w: -1.0
        }
        .validate()
        .is_err());
        // Solving a bad scenario errors the same way.
        assert!(solve(&Scenario::AllToAll {
            machine: machine(),
            w: f64::NAN
        })
        .is_err());
    }
}
