//! The unified scenario API: one request representation and one entry point
//! for every LoPC model variant.
//!
//! The four model types ([`AllToAll`], [`ClientServer`], [`GeneralModel`],
//! [`ForkJoin`]) each expose their own constructor and solution type — the
//! right interface for writing analysis code, but the wrong one for a
//! serving layer, a cache, or any caller that receives "a prediction
//! request" at runtime. [`Scenario`] is the closed data description of such
//! a request, [`Prediction`] the common result shape, and [`solve`] the
//! single dispatch that maps one to the other. `lopc-serve` builds its wire
//! schema, cache keys and endpoints directly on these types, and the bench
//! experiments use the same dispatch so the service answers are the
//! library's answers by construction.
//!
//! # Example
//!
//! ```
//! use lopc_core::scenario::{solve, Scenario};
//! use lopc_core::Machine;
//!
//! let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
//! let pred = solve(&Scenario::AllToAll { machine, w: 1000.0 }).unwrap();
//! // Identical to AllToAll::new(machine, 1000.0).solve().
//! assert!(pred.r > machine.contention_free_response(1000.0));
//! ```

pub use crate::scenario_batch::{is_retryable, solve_batch};

use crate::all_to_all::AllToAll;
use crate::client_server::ClientServer;
use crate::error::ModelError;
use crate::fork_join::ForkJoin;
use crate::general::GeneralModel;
use crate::params::Machine;

/// One prediction request: which model variant, with which parameters.
///
/// The enum is the single source of truth for the serving layer's wire
/// schema (`lopc-serve` encodes exactly these fields) and for cache-key
/// derivation, so new variants added here flow to the service by extending
/// one `match` per layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Scenario {
    /// Homogeneous all-to-all (§5 closed form).
    AllToAll {
        /// Architectural parameters.
        machine: Machine,
        /// Work between requests.
        w: f64,
    },
    /// Work-pile client–server (§6) at an explicit split, or at the eq. 6.8
    /// optimum when `ps` is `None`.
    ClientServer {
        /// Architectural parameters (`P` is the total node count).
        machine: Machine,
        /// Work per chunk.
        w: f64,
        /// Server count; `None` solves at the optimal allocation.
        ps: Option<usize>,
    },
    /// Fork-join fan-out of `k` overlapped requests per cycle (§7 extension).
    ForkJoin {
        /// Architectural parameters.
        machine: Machine,
        /// Work between request batches.
        w: f64,
        /// Requests per cycle.
        k: u32,
    },
    /// The full Appendix A per-node AMVA with arbitrary routing.
    General(GeneralModel),
    /// Shared-memory variant (§5.1): homogeneous all-to-all on a machine
    /// with per-node protocol processors (`Rw = W`).
    SharedMemory {
        /// Architectural parameters.
        machine: Machine,
        /// Work between requests.
        w: f64,
    },
}

impl Scenario {
    /// Short stable name of the variant (wire `"kind"` field, metrics
    /// labels).
    pub fn kind(&self) -> &'static str {
        match self {
            Scenario::AllToAll { .. } => "all_to_all",
            Scenario::ClientServer { .. } => "client_server",
            Scenario::ForkJoin { .. } => "fork_join",
            Scenario::General(_) => "general",
            Scenario::SharedMemory { .. } => "shared_memory",
        }
    }

    /// Validate without solving (the service rejects bad requests early).
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Scenario::AllToAll { machine, w } => AllToAll::new(*machine, *w).validate(),
            Scenario::ClientServer { machine, w, ps } => {
                let model = ClientServer::new(*machine, *w);
                model.validate()?;
                if let Some(ps) = ps {
                    if *ps == 0 || *ps >= machine.p {
                        return Err(ModelError::InvalidParameter("ps must be in 1..=P-1"));
                    }
                }
                Ok(())
            }
            Scenario::ForkJoin { machine, w, k } => ForkJoin::new(*machine, *w, *k).validate(),
            Scenario::General(model) => model.validate(),
            Scenario::SharedMemory { machine, w } => {
                GeneralModel::homogeneous_all_to_all(*machine, *w)
                    .with_protocol_processor()
                    .validate()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parameter-space metadata (axes, ranges, grid snapping)
// ---------------------------------------------------------------------------

/// Number of continuous axes of an interpolation-eligible scenario.
///
/// Every closed-form variant (`AllToAll`, `ClientServer`, `ForkJoin`,
/// `SharedMemory`) is smooth in exactly these four parameters: `W`, `St`,
/// `So`, `C²`. The `General` variant's parameter space has data-dependent
/// dimension (per-node work vector plus a routing matrix) and is excluded
/// from grid interpolation.
pub const INTERP_AXES: usize = 4;

/// One continuous axis of the LoPC parameter space.
///
/// The axis kind fixes the *reference grid* used by interpolating caches:
/// a shared, query-independent lattice, so that every caller snapping the
/// same value obtains the same cell. Cycle-valued axes (`Work`, `Latency`,
/// `Overhead`) use a per-decade mantissa lattice with 2–5 % relative
/// spacing whose points include the round values machine specs are quoted
/// in (25, 200, 1000, …); the dimensionless `Cv2` axis uses a linear
/// lattice of exactly representable `1/8` steps covering the practical
/// `C² ∈ [0, 4]` range and beyond.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Work between requests `W` (cycles).
    Work,
    /// Wire latency `St` (cycles).
    Latency,
    /// Handler dispatch cost `So` (cycles).
    Overhead,
    /// Squared coefficient of variation `C²` (dimensionless).
    Cv2,
}

/// One axis value of a concrete scenario: which axis, and where on it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AxisValue {
    /// Which axis.
    pub kind: AxisKind,
    /// The scenario's coordinate on it.
    pub value: f64,
}

/// A grid bracket around one coordinate: the nearest reference-grid points
/// with `lo <= x <= hi`. `lo == hi` means the coordinate *is* a grid point
/// (a degenerate axis — interpolation weight collapses to a single corner).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AxisBracket {
    /// Largest grid point `<= x` (bit pattern is part of cell identity).
    pub lo: f64,
    /// Smallest grid point `>= x`.
    pub hi: f64,
}

impl AxisBracket {
    /// True when the coordinate sits exactly on the grid.
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Linear interpolation weight of `x` inside the bracket (0 at `lo`,
    /// 1 at `hi`; 0 for degenerate brackets).
    pub fn weight(&self, x: f64) -> f64 {
        if self.is_degenerate() {
            0.0
        } else {
            ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        }
    }
}

/// Mantissa lattice shared by the cycle-valued axes: ~2–5 % relative steps
/// whose points include the round mantissas (1.0, 1.5, 2.0, 2.5, 5.0, …)
/// that machine parameters are usually quoted in.
fn mantissas() -> &'static [f64] {
    use std::sync::OnceLock;
    static M: OnceLock<Vec<f64>> = OnceLock::new();
    M.get_or_init(|| {
        let mut v = Vec::with_capacity(75);
        // 1.00 .. 1.95 in 0.05 steps (2.6–5 % relative).
        v.extend((0..20).map(|i| 1.0 + i as f64 * 0.05));
        // 2.0 .. 4.9 in 0.1 steps (2–5 %).
        v.extend((0..30).map(|i| 2.0 + i as f64 * 0.1));
        // 5.0 .. 9.8 in 0.2 steps (2–4 %).
        v.extend((0..25).map(|i| 5.0 + i as f64 * 0.2));
        v
    })
}

/// Relative tolerance for "is exactly on the grid": float noise from sweep
/// generators (`1000.0000001`) must land on the grid point, genuinely
/// distinct parameters must not.
const ON_GRID_REL_TOL: f64 = 1e-9;

/// Linear step of the `Cv2` lattice (exactly representable, so grid points
/// `k/8` are exact binary fractions and `C² ∈ {0, 0.5, 1, 2}` are on-grid).
const CV2_STEP: f64 = 0.125;

impl AxisKind {
    /// Short stable axis name (metrics labels, bench reports).
    pub fn name(&self) -> &'static str {
        match self {
            AxisKind::Work => "w",
            AxisKind::Latency => "st",
            AxisKind::Overhead => "so",
            AxisKind::Cv2 => "c2",
        }
    }

    /// The validated parameter range of this axis: every model variant
    /// accepts exactly `[0, ∞)` on all four axes, and the cycle time `R`
    /// is monotone non-decreasing in each of them (more work, longer
    /// wires, costlier handlers, or burstier service never *reduce* it —
    /// throughput `X` correspondingly never rises). Grid cells therefore
    /// never straddle a validity boundary: any bracket of an in-range
    /// coordinate is itself in range, which is what lets an interpolating
    /// cache solve corner scenarios without re-validating.
    pub fn valid_range(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    /// Bracket `x` between reference-grid points.
    ///
    /// Returns `None` when `x` cannot be placed on the grid: non-finite,
    /// negative, or at a magnitude extreme (`|x|` outside `10^±300`) where
    /// the lattice arithmetic itself would lose precision. `x = 0` is a
    /// grid point of every axis by definition.
    pub fn bracket(&self, x: f64) -> Option<AxisBracket> {
        if !x.is_finite() || x < 0.0 {
            return None;
        }
        if x == 0.0 {
            return Some(AxisBracket { lo: 0.0, hi: 0.0 });
        }
        let (lo, hi) = match self {
            AxisKind::Cv2 => {
                let k = (x / CV2_STEP).floor();
                (k * CV2_STEP, (k + 1.0) * CV2_STEP)
            }
            _ => {
                let e = x.log10().floor() as i32;
                if !(-300..=300).contains(&e) {
                    return None;
                }
                let dec = 10f64.powi(e);
                // Guard the decade against log/floor rounding at decade
                // boundaries: m must land in [1, 10).
                let (dec, e) = if x / dec < 1.0 {
                    (10f64.powi(e - 1), e - 1)
                } else if x / dec >= 10.0 {
                    (10f64.powi(e + 1), e + 1)
                } else {
                    (dec, e)
                };
                let m = x / dec;
                let table = mantissas();
                let i = match table.binary_search_by(|p| p.partial_cmp(&m).unwrap()) {
                    Ok(i) => i,
                    Err(0) => 0,
                    Err(i) => i - 1,
                };
                let lo = table[i] * dec;
                let hi = match table.get(i + 1) {
                    Some(&next) => next * dec,
                    None => 10f64.powi(e + 1),
                };
                (lo, hi)
            }
        };
        // Collapse onto an endpoint when x is within float noise of it.
        // The tolerance is *relative* to the grid point; only the C² axis
        // (whose lattice includes 0) needs an absolute floor — applying it
        // to cycle axes would swallow whole cells at magnitudes below the
        // step size.
        let near = |g: f64| {
            let scale = match self {
                AxisKind::Cv2 => g.abs().max(CV2_STEP),
                _ => g.abs(),
            };
            (x - g).abs() <= ON_GRID_REL_TOL * scale
        };
        if near(lo) {
            return Some(AxisBracket { lo, hi: lo });
        }
        if near(hi) {
            return Some(AxisBracket { lo: hi, hi });
        }
        debug_assert!(lo < x && x < hi, "bracket invariant: {lo} < {x} < {hi}");
        Some(AxisBracket { lo, hi })
    }
}

impl Scenario {
    /// The scenario's continuous axes, in canonical order
    /// `[W, St, So, C²]`, or `None` for variants that are not
    /// interpolation-eligible (`General`: data-dependent dimension).
    ///
    /// Together with [`Scenario::with_axis_values`] this is the complete
    /// parameter-space metadata an interpolating cache needs: enumerate the
    /// coordinates, snap each onto its [`AxisKind`] reference grid, and
    /// re-materialise corner/probe scenarios at grid coordinates. Discrete
    /// parameters (`P`, `ps`, `k`, the variant itself) are cell identity,
    /// never interpolated over.
    pub fn interp_axes(&self) -> Option<[AxisValue; INTERP_AXES]> {
        let (machine, w) = match self {
            Scenario::AllToAll { machine, w }
            | Scenario::SharedMemory { machine, w }
            | Scenario::ClientServer { machine, w, .. }
            | Scenario::ForkJoin { machine, w, .. } => (machine, *w),
            Scenario::General(_) => return None,
        };
        Some([
            AxisValue {
                kind: AxisKind::Work,
                value: w,
            },
            AxisValue {
                kind: AxisKind::Latency,
                value: machine.s_l,
            },
            AxisValue {
                kind: AxisKind::Overhead,
                value: machine.s_o,
            },
            AxisValue {
                kind: AxisKind::Cv2,
                value: machine.c2,
            },
        ])
    }

    /// The same scenario relocated to new axis coordinates
    /// `[W, St, So, C²]` (discrete parameters untouched), or `None` for
    /// ineligible variants.
    pub fn with_axis_values(&self, v: [f64; INTERP_AXES]) -> Option<Scenario> {
        let relocate = |machine: &Machine| Machine {
            p: machine.p,
            s_l: v[1],
            s_o: v[2],
            c2: v[3],
        };
        match self {
            Scenario::AllToAll { machine, .. } => Some(Scenario::AllToAll {
                machine: relocate(machine),
                w: v[0],
            }),
            Scenario::SharedMemory { machine, .. } => Some(Scenario::SharedMemory {
                machine: relocate(machine),
                w: v[0],
            }),
            Scenario::ClientServer { machine, ps, .. } => Some(Scenario::ClientServer {
                machine: relocate(machine),
                w: v[0],
                ps: *ps,
            }),
            Scenario::ForkJoin { machine, k, .. } => Some(Scenario::ForkJoin {
                machine: relocate(machine),
                w: v[0],
                k: *k,
            }),
            Scenario::General(_) => None,
        }
    }
}

/// The common shape of a solved scenario: the Figure 4-4 response-time
/// decomposition plus throughput, for whichever variant produced it.
///
/// Components a variant does not define are `NaN` (`rw`/`rq`/`ry` for the
/// multi-thread [`GeneralModel`] report only node-0 — the mean over nodes is
/// in `r`); consumers must treat `NaN` as "not applicable", and the serve
/// JSON codec encodes it as `null`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Mean cycle response time `R` (mean over active threads for the
    /// general model).
    pub r: f64,
    /// System throughput `X` (cycles per unit time over the whole machine).
    pub x: f64,
    /// Compute residence `Rw`.
    pub rw: f64,
    /// Request-handler response `Rq`.
    pub rq: f64,
    /// Reply-handler response `Ry`.
    pub ry: f64,
    /// Contention cost `R − (contention-free R)`.
    pub contention: f64,
    /// Servers used (client-server scenarios only, else `None`).
    pub ps: Option<usize>,
    /// Solver iterations.
    pub iterations: usize,
}

/// Solve one scenario through the variant's own entry point.
///
/// This is *the* dispatch: every number it returns is computed by the same
/// code path a direct library call would take, so service answers and
/// library answers are bit-identical (the `serve_vs_library` integration
/// test pins this).
pub fn solve(scenario: &Scenario) -> Result<Prediction, ModelError> {
    match scenario {
        Scenario::AllToAll { machine, w } => {
            let sol = AllToAll::new(*machine, *w).solve()?;
            Ok(Prediction {
                r: sol.r,
                x: machine.p as f64 * sol.x_per_node,
                rw: sol.rw,
                rq: sol.rq,
                ry: sol.ry,
                contention: sol.contention,
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::ClientServer { machine, w, ps } => {
            let model = ClientServer::new(*machine, *w);
            let ps = match ps {
                Some(ps) => *ps,
                None => model.optimal_servers()?,
            };
            let pt = model.throughput(ps)?;
            // Clients compute uninterrupted (Rw = W) and handle exactly one
            // reply per cycle (Ry = So) in the §6 analysis.
            Ok(Prediction {
                r: pt.r,
                x: pt.x,
                rw: *w,
                rq: pt.rq,
                ry: machine.s_o,
                contention: pt.r - machine.contention_free_response(*w),
                ps: Some(ps),
                iterations: 0,
            })
        }
        Scenario::ForkJoin { machine, w, k } => {
            let sol = ForkJoin::new(*machine, *w, *k).solve()?;
            Ok(Prediction {
                r: sol.r,
                x: machine.p as f64 / sol.r,
                rw: sol.rw,
                rq: sol.rq,
                ry: sol.ry,
                contention: sol.r - ForkJoin::new(*machine, *w, *k).contention_free(),
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::General(model) => {
            let sol = model.solve()?;
            Ok(Prediction {
                r: sol.mean_r(),
                x: sol.system_throughput(),
                rw: f64::NAN,
                rq: f64::NAN,
                ry: f64::NAN,
                contention: f64::NAN,
                ps: None,
                iterations: sol.iterations,
            })
        }
        Scenario::SharedMemory { machine, w } => {
            let sol = GeneralModel::homogeneous_all_to_all(*machine, *w)
                .with_protocol_processor()
                .solve()?;
            // Homogeneous: every node is identical, so node 0 is the system.
            Ok(Prediction {
                r: sol.r[0],
                x: sol.system_throughput(),
                rw: sol.rw[0],
                rq: sol.rq[0],
                ry: sol.ry[0],
                contention: sol.r[0] - machine.contention_free_response(*w),
                ps: None,
                iterations: sol.iterations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    /// The dispatch is the direct call, number for number.
    #[test]
    fn all_to_all_matches_direct() {
        let s = Scenario::AllToAll {
            machine: machine(),
            w: 1000.0,
        };
        let p = solve(&s).unwrap();
        let direct = AllToAll::new(machine(), 1000.0).solve().unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.rw, direct.rw);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ry, direct.ry);
        assert_eq!(p.contention, direct.contention);
        assert_eq!(p.x, 32.0 * direct.x_per_node);
    }

    #[test]
    fn client_server_explicit_split_matches_direct() {
        let s = Scenario::ClientServer {
            machine: machine(),
            w: 1000.0,
            ps: Some(5),
        };
        let p = solve(&s).unwrap();
        let direct = ClientServer::new(machine(), 1000.0).throughput(5).unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.x, direct.x);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ps, Some(5));
    }

    #[test]
    fn client_server_default_split_is_the_optimum() {
        let s = Scenario::ClientServer {
            machine: machine(),
            w: 1000.0,
            ps: None,
        };
        let p = solve(&s).unwrap();
        let opt = ClientServer::new(machine(), 1000.0)
            .optimal_servers()
            .unwrap();
        assert_eq!(p.ps, Some(opt));
        assert_eq!(
            p.x,
            ClientServer::new(machine(), 1000.0)
                .throughput(opt)
                .unwrap()
                .x
        );
    }

    #[test]
    fn fork_join_matches_direct() {
        let s = Scenario::ForkJoin {
            machine: machine(),
            w: 2000.0,
            k: 4,
        };
        let p = solve(&s).unwrap();
        let direct = ForkJoin::new(machine(), 2000.0, 4).solve().unwrap();
        assert_eq!(p.r, direct.r);
        assert_eq!(p.rq, direct.rq);
        assert_eq!(p.ry, direct.ry);
    }

    #[test]
    fn general_matches_direct() {
        let model = GeneralModel::client_server(machine(), 800.0, 4);
        let s = Scenario::General(model.clone());
        let p = solve(&s).unwrap();
        let direct = model.solve().unwrap();
        assert_eq!(p.r, direct.mean_r());
        assert_eq!(p.x, direct.system_throughput());
        assert!(p.rw.is_nan() && p.rq.is_nan() && p.ry.is_nan());
    }

    #[test]
    fn shared_memory_is_the_protocol_processor_variant() {
        let s = Scenario::SharedMemory {
            machine: machine(),
            w: 800.0,
        };
        let p = solve(&s).unwrap();
        let direct = GeneralModel::homogeneous_all_to_all(machine(), 800.0)
            .with_protocol_processor()
            .solve()
            .unwrap();
        assert_eq!(p.r, direct.r[0]);
        // Protocol processor: compute is never interrupted.
        assert!((p.rw - 800.0).abs() < 1e-9);
        // And it beats the message-passing variant.
        let mp = solve(&Scenario::AllToAll {
            machine: machine(),
            w: 800.0,
        })
        .unwrap();
        assert!(p.r < mp.r);
    }

    #[test]
    fn kinds_are_stable() {
        let m = machine();
        assert_eq!(
            Scenario::AllToAll { machine: m, w: 1.0 }.kind(),
            "all_to_all"
        );
        assert_eq!(
            Scenario::ClientServer {
                machine: m,
                w: 1.0,
                ps: None
            }
            .kind(),
            "client_server"
        );
        assert_eq!(
            Scenario::ForkJoin {
                machine: m,
                w: 1.0,
                k: 2
            }
            .kind(),
            "fork_join"
        );
        assert_eq!(
            Scenario::General(GeneralModel::homogeneous_all_to_all(m, 1.0)).kind(),
            "general"
        );
        assert_eq!(
            Scenario::SharedMemory { machine: m, w: 1.0 }.kind(),
            "shared_memory"
        );
    }

    #[test]
    fn round_machine_parameters_sit_on_the_grid() {
        // The canonical machines of the thesis quantize onto lattice points,
        // so sweeps over W at a fixed machine get degenerate machine axes
        // (1-D cells, two corners) instead of full 4-D cells.
        for (kind, x) in [
            (AxisKind::Latency, 25.0),
            (AxisKind::Overhead, 200.0),
            (AxisKind::Work, 1000.0),
            (AxisKind::Work, 500.0),
            (AxisKind::Latency, 50.0),
            (AxisKind::Cv2, 0.0),
            (AxisKind::Cv2, 1.0),
            (AxisKind::Cv2, 2.0),
            (AxisKind::Cv2, 0.5),
        ] {
            let b = kind.bracket(x).unwrap();
            assert!(
                b.is_degenerate(),
                "{}={x} must be on-grid, got {b:?}",
                kind.name()
            );
            assert_eq!(b.lo, x);
        }
    }

    #[test]
    fn float_noise_collapses_onto_the_grid_point() {
        let b = AxisKind::Work.bracket(1000.0000001).unwrap();
        assert!(b.is_degenerate());
        assert_eq!(b.lo, 1000.0);
    }

    #[test]
    fn off_grid_values_get_proper_brackets() {
        for (kind, x) in [
            (AxisKind::Work, 131.0),
            (AxisKind::Work, 777.7),
            (AxisKind::Latency, 33.3),
            (AxisKind::Cv2, 1.3),
            (AxisKind::Work, 0.00123),
            (AxisKind::Work, 123456.7),
        ] {
            let b = kind.bracket(x).unwrap();
            assert!(b.lo < x && x < b.hi, "{}={x}: {b:?}", kind.name());
            assert!(!b.is_degenerate());
            let t = b.weight(x);
            assert!(t > 0.0 && t < 1.0);
            // Brackets are tight: 2–5 % relative on cycle axes, one linear
            // step on C².
            if kind == AxisKind::Cv2 {
                assert!((b.hi - b.lo - 0.125).abs() < 1e-12);
            } else {
                let rel = (b.hi - b.lo) / b.lo;
                assert!(
                    rel > 0.015 && rel < 0.055,
                    "{}={x}: step {rel}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn bracket_is_consistent_across_the_cell() {
        // Every x inside a cell brackets to the same (lo, hi) — the property
        // that makes cells shared between queries.
        let b = AxisKind::Work.bracket(777.7).unwrap();
        for f in [0.05, 0.3, 0.7, 0.95] {
            let x = b.lo + f * (b.hi - b.lo);
            let bx = AxisKind::Work.bracket(x).unwrap();
            if bx.is_degenerate() {
                // Only possible within float tolerance of an endpoint.
                assert!(bx.lo == b.lo || bx.lo == b.hi);
            } else {
                assert_eq!((bx.lo, bx.hi), (b.lo, b.hi), "x={x}");
            }
        }
    }

    #[test]
    fn tiny_magnitudes_keep_proper_brackets() {
        // Regression: the degeneracy tolerance is relative to the grid
        // point, so a mid-cell value at tiny magnitude must NOT collapse
        // onto a corner (an absolute floor here once swallowed whole cells
        // below ~1e-8).
        let b = AxisKind::Work.bracket(5.1e-9).unwrap();
        assert!(!b.is_degenerate(), "5.1e-9 sits mid-cell: {b:?}");
        assert!(b.lo < 5.1e-9 && 5.1e-9 < b.hi);
        // While genuine float noise at the same magnitude still snaps.
        let g = AxisKind::Work.bracket(5e-9 * (1.0 + 1e-12)).unwrap();
        assert!(g.is_degenerate());
    }

    #[test]
    fn zero_and_extremes() {
        let z = AxisKind::Work.bracket(0.0).unwrap();
        assert!(z.is_degenerate() && z.lo == 0.0);
        assert!(AxisKind::Work.bracket(f64::NAN).is_none());
        assert!(AxisKind::Work.bracket(-1.0).is_none());
        assert!(AxisKind::Work.bracket(1e305).is_none());
        assert!(AxisKind::Work.bracket(1e-305).is_none());
        // Decade boundary from below: bracket of 9.99e2 spans into 1e3.
        let b = AxisKind::Work.bracket(999.0).unwrap();
        assert_eq!(b.hi, 1000.0);
        assert!((b.lo - 980.0).abs() < 1e-9);
    }

    #[test]
    fn axes_enumerate_and_relocate() {
        let s = Scenario::ForkJoin {
            machine: machine(),
            w: 2000.0,
            k: 4,
        };
        let axes = s.interp_axes().unwrap();
        assert_eq!(axes[0].kind, AxisKind::Work);
        assert_eq!(axes[0].value, 2000.0);
        assert_eq!(axes[1].value, 25.0);
        assert_eq!(axes[2].value, 200.0);
        assert_eq!(axes[3].value, 0.0);
        let moved = s.with_axis_values([1500.0, 30.0, 210.0, 1.0]).unwrap();
        match moved {
            Scenario::ForkJoin { machine, w, k } => {
                assert_eq!(w, 1500.0);
                assert_eq!(machine.s_l, 30.0);
                assert_eq!(machine.s_o, 210.0);
                assert_eq!(machine.c2, 1.0);
                assert_eq!(machine.p, 32);
                assert_eq!(k, 4, "discrete parameters are never relocated");
            }
            other => panic!("variant changed: {other:?}"),
        }
        // General is ineligible.
        let g = Scenario::General(GeneralModel::homogeneous_all_to_all(machine(), 100.0));
        assert!(g.interp_axes().is_none());
        assert!(g.with_axis_values([1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let bad_machine = Machine::new(1, 25.0, 200.0);
        assert!(Scenario::AllToAll {
            machine: bad_machine,
            w: 1.0
        }
        .validate()
        .is_err());
        assert!(Scenario::ClientServer {
            machine: machine(),
            w: 1.0,
            ps: Some(32)
        }
        .validate()
        .is_err());
        assert!(Scenario::ForkJoin {
            machine: machine(),
            w: 1.0,
            k: 0
        }
        .validate()
        .is_err());
        assert!(Scenario::AllToAll {
            machine: machine(),
            w: -1.0
        }
        .validate()
        .is_err());
        // Solving a bad scenario errors the same way.
        assert!(solve(&Scenario::AllToAll {
            machine: machine(),
            w: f64::NAN
        })
        .is_err());
    }
}
