//! Client–server work-pile analysis (§6): throughput for any client/server
//! split and the closed-form optimal number of servers.
//!
//! The machine is partitioned into `Pc` clients (which do the work) and
//! `Ps = P − Pc` servers (which hand out chunks). Clients never receive
//! requests (`Rw = W`, `Ry = So`); servers never compute or receive replies
//! (`Qy = Uy = 0` at servers). The cycle is then
//!
//! ```text
//! R = W + 2·St + Rq + So                                    (eq. 6.7)
//! ```
//!
//! with the server response `Rq` given by Bard's approximation. At the
//! throughput-optimal split, the mean number of customers per server is
//! exactly 1, giving the closed forms
//!
//! ```text
//! Rs  = So · (1 + sqrt((C²+1)/2))                           (eq. 6.6)
//! Ps* = P·Rs / (R + Rs)
//!     = P·(1 + sqrt((C²+1)/2))·So
//!       ───────────────────────────────────────────        (eq. 6.8)
//!       W + 2·St + (3 + 2·sqrt((C²+1)/2))·So
//! ```
//!
//! For arbitrary `Ps`, the same AMVA equations yield a scalar fixed point in
//! `R` (server arrival rate `λ = Pc/(Ps·R)`):
//!
//! ```text
//! Rq = So(1 + λ·Rq + β·λ·So) / 1   =>   Rq = So(1 + β·λ·So)/(1 − λ·So)
//! ```
//!
//! solved by bisection; throughput is `X = Pc/R` (chunks per cycle per
//! machine). The naive LogP bounds shown dotted in Figure 6-2 are
//! `X ≤ Ps/So` (server saturation) and `X ≤ Pc/(W + 2·St + 2·So)`
//! (contention-free clients).

use crate::error::ModelError;
use crate::params::Machine;
use lopc_solver::{bisect, bracket_upward, Root};

/// The work-pile client-server model (§6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientServer {
    /// Architectural parameters (`P` is the total node count to split).
    pub machine: Machine,
    /// Average work per chunk at a client, `W`.
    pub w: f64,
}

/// Model solution at one client/server split.
#[derive(Clone, Copy, Debug)]
pub struct CsPoint {
    /// Servers in this configuration.
    pub ps: usize,
    /// Clients (`P − Ps`).
    pub pc: usize,
    /// System throughput `X = Pc/R` (chunks per cycle).
    pub x: f64,
    /// Client cycle response time `R`.
    pub r: f64,
    /// Server response time `Rq` (service + queueing).
    pub rq: f64,
    /// Mean customers at each server `Qs = λ·Rq`.
    pub qs: f64,
    /// Server utilisation `Us = λ·So`.
    pub us: f64,
}

impl ClientServer {
    /// Model for `machine` with per-chunk work `w`.
    pub fn new(machine: Machine, w: f64) -> Self {
        ClientServer { machine, w }
    }

    /// Parameter validation.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.machine.validate()?;
        if self.machine.p < 2 {
            return Err(ModelError::InvalidParameter("need at least 2 nodes"));
        }
        if !self.w.is_finite() || self.w < 0.0 {
            return Err(ModelError::InvalidParameter("w must be finite and >= 0"));
        }
        Ok(())
    }

    /// Server response time at the optimal allocation (eq. 6.6):
    /// `Rs = So·(1 + sqrt((C²+1)/2))`.
    pub fn server_response_at_optimum(&self) -> f64 {
        self.machine.s_o * (1.0 + ((self.machine.c2 + 1.0) / 2.0).sqrt())
    }

    /// The continuous optimal server count of eq. 6.8.
    pub fn optimal_servers_continuous(&self) -> f64 {
        let rs = self.server_response_at_optimum();
        // R at the optimum (eq. 6.7 with Rq = Rs).
        let r = self.w + 2.0 * self.machine.s_l + rs + self.machine.s_o;
        self.machine.p as f64 * rs / (r + rs)
    }

    /// The best integer server count: round eq. 6.8 to the neighbour with the
    /// higher modelled throughput, clamped to `1..=P−1`.
    pub fn optimal_servers(&self) -> Result<usize, ModelError> {
        self.validate()?;
        let cont = self.optimal_servers_continuous();
        let p = self.machine.p;
        let lo = (cont.floor() as usize).clamp(1, p - 1);
        let hi = (cont.ceil() as usize).clamp(1, p - 1);
        if lo == hi {
            return Ok(lo);
        }
        let x_lo = self.throughput(lo)?.x;
        let x_hi = self.throughput(hi)?.x;
        Ok(if x_lo >= x_hi { lo } else { hi })
    }

    /// Solve the model at a particular server count `ps ∈ 1..=P−1`.
    pub fn throughput(&self, ps: usize) -> Result<CsPoint, ModelError> {
        self.validate()?;
        let p = self.machine.p;
        if ps == 0 || ps >= p {
            return Err(ModelError::InvalidParameter("ps must be in 1..=P-1"));
        }
        let pc = p - ps;
        let so = self.machine.s_o;
        let st = self.machine.s_l;
        let beta = self.machine.beta();
        let lower = self.w + 2.0 * st + 2.0 * so;
        if lower == 0.0 {
            return Err(ModelError::Degenerate("all costs zero"));
        }

        if so == 0.0 {
            let r = self.w + 2.0 * st;
            return Ok(CsPoint {
                ps,
                pc,
                x: pc as f64 / r,
                r,
                rq: 0.0,
                qs: 0.0,
                us: 0.0,
            });
        }

        // Server response at a given client cycle time R.
        let rq_of = |r: f64| -> f64 {
            let lambda = pc as f64 / (ps as f64 * r);
            let denom = 1.0 - lambda * so;
            if denom <= 0.0 {
                return f64::INFINITY;
            }
            so * (1.0 + beta * lambda * so) / denom
        };
        let g = |r: f64| self.w + 2.0 * st + rq_of(r) + so - r;

        let hi = bracket_upward(g, lower - 1e-12, lower.max(so), 200)?;
        let root = bisect(g, lower - 1e-12, hi, 1e-10 * lower.max(1.0), 200)?;
        Ok(self.point_at(ps, root))
    }

    /// Recompose the split's solution at a solved fixed point of eq. 6.7.
    /// Shared by [`ClientServer::throughput`] and the batched
    /// `scenario::solve_batch` path.
    pub(crate) fn point_at(&self, ps: usize, root: Root) -> CsPoint {
        let pc = self.machine.p - ps;
        let so = self.machine.s_o;
        let beta = self.machine.beta();
        let r = root.x;
        let rq = {
            let lambda = pc as f64 / (ps as f64 * r);
            let denom = 1.0 - lambda * so;
            if denom <= 0.0 {
                f64::INFINITY
            } else {
                so * (1.0 + beta * lambda * so) / denom
            }
        };
        let lambda = pc as f64 / (ps as f64 * r);
        CsPoint {
            ps,
            pc,
            x: pc as f64 / r,
            r,
            rq,
            qs: lambda * rq,
            us: lambda * so,
        }
    }

    /// Model throughput at every split `ps = 1..=P−1` (Figure 6-2's curve).
    pub fn sweep(&self) -> Result<Vec<CsPoint>, ModelError> {
        (1..self.machine.p).map(|ps| self.throughput(ps)).collect()
    }

    /// LogP optimistic bound: server saturation, `X ≤ Ps/So`.
    pub fn logp_server_bound(&self, ps: usize) -> f64 {
        if self.machine.s_o == 0.0 {
            f64::INFINITY
        } else {
            ps as f64 / self.machine.s_o
        }
    }

    /// LogP optimistic bound: contention-free clients,
    /// `X ≤ Pc/(W + 2·St + 2·So)`.
    pub fn logp_client_bound(&self, ps: usize) -> f64 {
        let pc = (self.machine.p - ps) as f64;
        pc / (self.w + 2.0 * self.machine.s_l + 2.0 * self.machine.s_o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig62_machine() -> Machine {
        // Figure 6-2: 32 nodes, handler time 131 cycles.
        Machine::new(32, 50.0, 131.0).with_c2(0.0)
    }

    /// eq. 6.6 closed forms: Rs = 2·So for exponential, ≈1.707·So for
    /// constant handlers.
    #[test]
    fn server_response_closed_form() {
        let exp = ClientServer::new(Machine::new(32, 0.0, 100.0), 0.0);
        assert!((exp.server_response_at_optimum() - 200.0).abs() < 1e-9);
        let cst = ClientServer::new(Machine::new(32, 0.0, 100.0).with_c2(0.0), 0.0);
        assert!((cst.server_response_at_optimum() - 100.0 * (1.0 + 0.5f64.sqrt())).abs() < 1e-9);
    }

    /// At the continuous optimum of eq. 6.8, the modelled mean queue per
    /// server is ≈ 1 — the §6 optimality criterion.
    #[test]
    fn queue_length_is_one_at_optimum() {
        let model = ClientServer::new(fig62_machine(), 1000.0);
        let ps = model.optimal_servers().unwrap();
        let pt = model.throughput(ps).unwrap();
        assert!(
            (pt.qs - 1.0).abs() < 0.35,
            "Qs at modelled optimum should be near 1, got {}",
            pt.qs
        );
    }

    /// The eq. 6.8 optimum maximises the modelled throughput curve (within
    /// one server of the grid argmax).
    #[test]
    fn closed_form_matches_sweep_argmax() {
        for &w in &[200.0, 1000.0, 4000.0] {
            for &c2 in &[0.0, 1.0] {
                let model = ClientServer::new(fig62_machine().with_c2(c2), w);
                let sweep = model.sweep().unwrap();
                let argmax = sweep.iter().max_by(|a, b| a.x.total_cmp(&b.x)).unwrap().ps;
                let closed = model.optimal_servers().unwrap();
                assert!(
                    (argmax as i64 - closed as i64).abs() <= 1,
                    "W={w} C²={c2}: sweep argmax {argmax} vs closed form {closed}"
                );
            }
        }
    }

    /// Throughput rises then falls across the split (Figure 6-2's shape).
    #[test]
    fn throughput_curve_is_unimodal() {
        let model = ClientServer::new(fig62_machine(), 1000.0);
        let xs: Vec<f64> = model.sweep().unwrap().iter().map(|p| p.x).collect();
        let peak = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for i in 1..=peak {
            assert!(xs[i] >= xs[i - 1] - 1e-12, "rising to the peak");
        }
        for i in peak + 1..xs.len() {
            assert!(xs[i] <= xs[i - 1] + 1e-12, "falling after the peak");
        }
    }

    /// The model never exceeds either LogP optimistic bound.
    #[test]
    fn logp_bounds_dominate_model() {
        let model = ClientServer::new(fig62_machine(), 1000.0);
        for pt in model.sweep().unwrap() {
            assert!(pt.x <= model.logp_server_bound(pt.ps) + 1e-12);
            assert!(pt.x <= model.logp_client_bound(pt.ps) + 1e-12);
        }
    }

    /// More variable handlers need more servers (eq. 6.8 is increasing in C²
    /// through Rs).
    #[test]
    fn optimum_grows_with_c2() {
        let w = 1000.0;
        let p0 = ClientServer::new(fig62_machine().with_c2(0.0), w).optimal_servers_continuous();
        let p1 = ClientServer::new(fig62_machine().with_c2(1.0), w).optimal_servers_continuous();
        let p4 = ClientServer::new(fig62_machine().with_c2(4.0), w).optimal_servers_continuous();
        assert!(p0 < p1 && p1 < p4, "{p0} {p1} {p4}");
    }

    /// More work per chunk means fewer servers needed.
    #[test]
    fn optimum_shrinks_with_w() {
        let m = fig62_machine();
        let small = ClientServer::new(m, 100.0).optimal_servers_continuous();
        let large = ClientServer::new(m, 10_000.0).optimal_servers_continuous();
        assert!(large < small);
    }

    /// Saturated servers: with tiny W and one server, utilisation nears 1
    /// and the response time stays finite (closed network).
    #[test]
    fn single_server_saturation() {
        let model = ClientServer::new(fig62_machine(), 10.0);
        let pt = model.throughput(1).unwrap();
        assert!(pt.us > 0.9 && pt.us < 1.0, "Us = {}", pt.us);
        assert!(pt.r.is_finite());
        // Throughput pinned at the server bound.
        assert!(pt.x <= model.logp_server_bound(1));
        assert!(pt.x > 0.9 * model.logp_server_bound(1));
    }

    /// ps bounds are enforced.
    #[test]
    fn ps_bounds() {
        let model = ClientServer::new(fig62_machine(), 100.0);
        assert!(model.throughput(0).is_err());
        assert!(model.throughput(32).is_err());
        assert!(model.throughput(31).is_ok());
    }

    /// Degenerate and invalid parameter handling.
    #[test]
    fn validation() {
        assert!(ClientServer::new(Machine::new(1, 0.0, 1.0), 1.0)
            .optimal_servers()
            .is_err());
        assert!(ClientServer::new(fig62_machine(), -5.0).sweep().is_err());
        let zero_handler = ClientServer::new(Machine::new(8, 10.0, 0.0), 100.0);
        let pt = zero_handler.throughput(2).unwrap();
        assert_eq!(pt.rq, 0.0);
        assert_eq!(pt.r, 120.0);
    }

    /// The solved point is a true fixed point of eq. 6.7.
    #[test]
    fn solution_is_fixed_point() {
        let model = ClientServer::new(fig62_machine(), 700.0);
        let pt = model.throughput(7).unwrap();
        let recomposed = model.w + 2.0 * model.machine.s_l + pt.rq + model.machine.s_o;
        assert!((recomposed - pt.r).abs() < 1e-6);
        // Little's law at the server: Qs = λ·Rq.
        let lambda = pt.pc as f64 / (pt.ps as f64 * pt.r);
        assert!((pt.qs - lambda * pt.rq).abs() < 1e-9);
    }
}
