//! The LogP baseline: the contention-free model LoPC extends.
//!
//! LoPC takes `L`, `o` and `P` directly from LogP (Table 3.1) and adds the
//! contention cost `C`. A *naive* LogP analysis of a blocking request/reply
//! cycle predicts `W + 2·St + 2·So` — correct only when no handler ever
//! queues or interrupts useful work. §5.3 quantifies how wrong that is (up
//! to 37 % under-prediction at `W = 0`), which is the reason LoPC exists;
//! this module provides the baseline those comparisons are made against.

use crate::params::Machine;

/// Classic LogP parameters, derivable from a LoPC [`Machine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogPParams {
    /// Network latency `L` (== LoPC `St`).
    pub l: f64,
    /// Per-message processing overhead `o` (== LoPC `So`).
    pub o: f64,
    /// Bandwidth gap `g`; LoPC assumes balanced interfaces, so 0.
    pub g: f64,
    /// Processor count `P`.
    pub p: usize,
}

impl From<&Machine> for LogPParams {
    fn from(m: &Machine) -> Self {
        LogPParams {
            l: m.s_l,
            o: m.s_o,
            g: 0.0,
            p: m.p,
        }
    }
}

impl LogPParams {
    /// One-way message cost under LogP: `o + L + o` (send overhead, wire,
    /// receive overhead).
    pub fn one_way(&self) -> f64 {
        2.0 * self.o + self.l
    }

    /// Contention-free cost of one compute/request cycle: work, two wire
    /// trips, a request handler and a reply handler —
    /// `W + 2·St + 2·So` (the lower bound of eq. 5.12).
    pub fn contention_free_cycle(&self, w: f64) -> f64 {
        w + 2.0 * self.l + 2.0 * self.o
    }

    /// Contention-free total runtime for `n` requests per node (`n·R`, §4).
    pub fn contention_free_runtime(&self, w: f64, n: u64) -> f64 {
        n as f64 * self.contention_free_cycle(w)
    }
}

/// Convenience on [`Machine`]: the LogP (contention-free) cycle prediction.
impl Machine {
    /// `W + 2·St + 2·So` — the naive LogP response-time prediction and the
    /// lower bound of eq. 5.12.
    pub fn contention_free_response(&self, w: f64) -> f64 {
        w + 2.0 * self.s_l + 2.0 * self.s_o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_mapping_matches_table_3_1() {
        let m = Machine::new(32, 25.0, 200.0);
        let lp = LogPParams::from(&m);
        assert_eq!(lp.l, 25.0);
        assert_eq!(lp.o, 200.0);
        assert_eq!(lp.g, 0.0);
        assert_eq!(lp.p, 32);
    }

    #[test]
    fn one_way_cost() {
        let lp = LogPParams {
            l: 10.0,
            o: 3.0,
            g: 0.0,
            p: 4,
        };
        assert_eq!(lp.one_way(), 16.0);
    }

    #[test]
    fn contention_free_cycle_is_lower_bound() {
        let m = Machine::new(32, 25.0, 200.0);
        let lp = LogPParams::from(&m);
        assert_eq!(lp.contention_free_cycle(1000.0), 1000.0 + 50.0 + 400.0);
        assert_eq!(
            m.contention_free_response(1000.0),
            lp.contention_free_cycle(1000.0)
        );
    }

    #[test]
    fn runtime_scales_with_n() {
        let lp = LogPParams {
            l: 5.0,
            o: 10.0,
            g: 0.0,
            p: 8,
        };
        assert_eq!(
            lp.contention_free_runtime(100.0, 7),
            7.0 * (100.0 + 10.0 + 20.0)
        );
    }
}
