//! Batched scenario solving: many [`Scenario`]s to joint convergence through
//! the structure-of-arrays kernels of `lopc_solver::batch`.
//!
//! [`solve_batch`] is pinned **lane-for-lane bit-identical** to calling
//! [`scenario::solve`](crate::scenario::solve) on each scenario in order
//! (the `batch_differential` integration suite enforces this across every
//! variant, lane count and lane order). The speedup comes purely from
//! instruction-level parallelism: each solver round evaluates the recursion
//! for *all* still-active lanes back to back, so the long division chains
//! that dominate a scalar solve (each ~20+ cycles of latency, serially
//! dependent through the bracket/bisect control flow) overlap across lanes
//! instead of stalling the pipeline one lane at a time.
//!
//! How lanes are routed:
//!
//! * `AllToAll`, `ForkJoin` and `ClientServer` reduce to a scalar root-find
//!   on `g(R) = F[R] − R`; same-variant lanes share one
//!   [`bracket_bisect_many`] call whose evaluation callback reads the lane
//!   parameters from flat arrays (the compiler-vectorizable inner loop).
//! * `ClientServer { ps: None }` expands to the two integer splits
//!   bracketing the eq. 6.8 continuous optimum — both ride the same batch
//!   as ordinary lanes and the winner is picked afterwards by the exact
//!   comparison the scalar `optimal_servers` performs.
//! * `General` and `SharedMemory` lanes iterate under [`solve_damped_many`],
//!   which keeps every lane's state in one flat buffer and retires lanes
//!   independently at their own convergence iteration.
//! * Lanes that never reach an iterative kernel in the scalar path
//!   (validation failures, degenerate models, `So = 0` closed forms) are
//!   answered by the scalar dispatch directly — those paths are O(1), so
//!   batching them buys nothing and reusing `solve` keeps the equivalence
//!   trivially exact.
//!
//! Lane failures (no bracket, budget exhaustion, NaN breakdown) retire only
//! their own lane; every other lane completes normally. An exhausted damped
//! lane reports [`SolverError::Exhausted`] with its last iterate and a
//! contraction flag, so callers can retry just that lane with a larger
//! budget instead of re-running the whole batch.
//!
//! # Example
//!
//! ```
//! use lopc_core::scenario::{solve, solve_batch, Scenario};
//! use lopc_core::Machine;
//!
//! let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
//! let lanes: Vec<Scenario> = (0..8)
//!     .map(|i| Scenario::AllToAll { machine, w: 250.0 * i as f64 })
//!     .collect();
//! let batch = solve_batch(&lanes);
//! for (scenario, batched) in lanes.iter().zip(&batch) {
//!     assert_eq!(batched, &solve(scenario));
//! }
//! ```

use crate::all_to_all::AllToAll;
use crate::client_server::{ClientServer, CsPoint};
use crate::error::ModelError;
use crate::fork_join::ForkJoin;
use crate::general::GeneralModel;
use crate::params::Machine;
use crate::scenario::{solve, Prediction, Scenario};
use lopc_solver::{bracket_bisect_many, solve_damped_many, BracketBisectSpec, SolverError};

/// Where a scenario's answer comes from after the kernels run.
enum Pending {
    /// Resolved in the pre-pass (closed form or entry-check error).
    Direct,
    /// All-to-all root lane.
    A2a(usize),
    /// Fork-join root lane.
    Fj(usize),
    /// Client-server lane at a fixed split.
    Cs { ps: usize, lane: usize },
    /// Client-server at the optimal split: two candidate lanes, winner
    /// chosen by the scalar `optimal_servers` comparison.
    CsOpt {
        lo: usize,
        hi: usize,
        lo_lane: usize,
        hi_lane: usize,
    },
    /// General / shared-memory damped fixed-point lane.
    Damped(usize),
}

/// SoA parameter arrays for one bracket/bisect lane group. Unused arrays
/// stay empty (`k` for non-fork-join groups, `pc`/`ps` outside
/// client-server).
#[derive(Default)]
struct RootLanes {
    specs: Vec<BracketBisectSpec>,
    w: Vec<f64>,
    st: Vec<f64>,
    so: Vec<f64>,
    beta: Vec<f64>,
    k: Vec<f64>,
    pc: Vec<f64>,
    ps: Vec<f64>,
}

/// Dense (active-set-ordered) copies of a lane group's parameter columns.
///
/// The batched evaluator receives the active lanes each round; indexing the
/// SoA columns through that lane list is a gather, which blocks the
/// auto-vectorization the whole design is after. This helper keeps
/// j-indexed copies of the columns, re-compacted only on the rounds where
/// the active set actually changed (each lane retires once, so the total
/// copy volume is O(rounds-with-retirement × active), trivial next to the
/// model evaluations) — every other round the evaluator runs straight
/// contiguous loops that the compiler turns into `vdivpd`-bound SIMD.
/// Exactly-rounded IEEE ops are bit-identical whether issued as scalars or
/// vector lanes, so this changes nothing about the results.
struct DenseCols<const N: usize> {
    seen: Vec<u32>,
    cols: [Vec<f64>; N],
}

impl<const N: usize> DenseCols<N> {
    fn new() -> Self {
        DenseCols {
            seen: Vec::new(),
            cols: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Refresh the dense columns for this round's active lanes; returns
    /// them j-indexed, aligned with the evaluator's `xs`/`out`.
    fn refresh(&mut self, lanes: &[u32], src: [&[f64]; N]) -> &[Vec<f64>; N] {
        if self.seen != lanes {
            self.seen.clear();
            self.seen.extend_from_slice(lanes);
            for (col, s) in self.cols.iter_mut().zip(src) {
                col.clear();
                col.extend(lanes.iter().map(|&l| s[l as usize]));
            }
        }
        &self.cols
    }
}

/// Register a client-server lane at split `ps`, replaying the spec the
/// scalar `throughput` hands to `bracket_upward`/`bisect`.
fn push_cs(g: &mut RootLanes, model: &ClientServer, ps: usize) -> usize {
    let m = model.machine;
    let lower = model.w + 2.0 * m.s_l + 2.0 * m.s_o;
    let lane = g.specs.len();
    g.specs.push(BracketBisectSpec {
        lo: lower - 1e-12,
        initial_step: lower.max(m.s_o),
        max_doublings: 200,
        tol: 1e-10 * lower.max(1.0),
        max_iter: 200,
    });
    g.w.push(model.w);
    g.st.push(m.s_l);
    g.so.push(m.s_o);
    g.beta.push(m.beta());
    g.pc.push((m.p - ps) as f64);
    g.ps.push(ps as f64);
    lane
}

/// The §6 Prediction shape (mirrors the scalar dispatch exactly).
fn cs_prediction(machine: &Machine, w: f64, ps: usize, pt: CsPoint) -> Prediction {
    Prediction {
        r: pt.r,
        x: pt.x,
        rw: w,
        rq: pt.rq,
        ry: machine.s_o,
        contention: pt.r - machine.contention_free_response(w),
        ps: Some(ps),
        iterations: 0,
    }
}

/// Solve many scenarios as one batch.
///
/// Returns one result per input lane, in input order. Equivalent to
/// `scenarios.iter().map(solve).collect()` bit for bit — including which
/// lanes fail and with which error — but substantially faster for large
/// homogeneous batches (parameter sweeps, interpolation-cell corner sets,
/// service cache-miss bursts).
pub fn solve_batch(scenarios: &[Scenario]) -> Vec<Result<Prediction, ModelError>> {
    let n = scenarios.len();
    let mut out: Vec<Option<Result<Prediction, ModelError>>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<Pending> = Vec::with_capacity(n);

    let mut a2a = RootLanes::default();
    let mut fj = RootLanes::default();
    let mut cs = RootLanes::default();
    let mut damped_models: Vec<GeneralModel> = Vec::new();
    let mut damped_x0s: Vec<Vec<f64>> = Vec::new();

    // Pre-pass: replay each scenario's scalar entry checks; route lanes that
    // would reach an iterative kernel into their group, answer the rest
    // through the scalar dispatch (closed forms and errors are O(1)).
    for (i, s) in scenarios.iter().enumerate() {
        let p = match s {
            Scenario::AllToAll { machine, w } => {
                let model = AllToAll::new(*machine, *w);
                if model.validate().is_err() || machine.s_o == 0.0 {
                    out[i] = Some(solve(s));
                    Pending::Direct
                } else {
                    let lower = model.contention_free();
                    let lane = a2a.specs.len();
                    a2a.specs.push(BracketBisectSpec {
                        lo: lower,
                        initial_step: (4.0 + machine.c2) * machine.s_o,
                        max_doublings: 64,
                        tol: 1e-10 * lower.max(1.0),
                        max_iter: 200,
                    });
                    a2a.w.push(*w);
                    a2a.st.push(machine.s_l);
                    a2a.so.push(machine.s_o);
                    a2a.beta.push(machine.beta());
                    Pending::A2a(lane)
                }
            }
            Scenario::ForkJoin { machine, w, k } => {
                let model = ForkJoin::new(*machine, *w, *k);
                if model.validate().is_err() || machine.s_o == 0.0 {
                    out[i] = Some(solve(s));
                    Pending::Direct
                } else {
                    let lower = model.contention_free();
                    let lane = fj.specs.len();
                    fj.specs.push(BracketBisectSpec {
                        lo: lower,
                        initial_step: (4.0 + machine.c2) * *k as f64 * machine.s_o,
                        max_doublings: 96,
                        tol: 1e-10 * lower.max(1.0),
                        max_iter: 200,
                    });
                    fj.w.push(*w);
                    fj.st.push(machine.s_l);
                    fj.so.push(machine.s_o);
                    fj.beta.push(machine.beta());
                    fj.k.push(*k as f64);
                    Pending::Fj(lane)
                }
            }
            Scenario::ClientServer { machine, w, ps } => {
                let model = ClientServer::new(*machine, *w);
                let valid = model.validate().is_ok();
                match ps {
                    Some(ps_req) => {
                        if !valid || *ps_req == 0 || *ps_req >= machine.p || machine.s_o == 0.0 {
                            out[i] = Some(solve(s));
                            Pending::Direct
                        } else {
                            let lane = push_cs(&mut cs, &model, *ps_req);
                            Pending::Cs { ps: *ps_req, lane }
                        }
                    }
                    None => {
                        if !valid || machine.s_o == 0.0 {
                            out[i] = Some(solve(s));
                            Pending::Direct
                        } else {
                            let cont = model.optimal_servers_continuous();
                            let lo = (cont.floor() as usize).clamp(1, machine.p - 1);
                            let hi = (cont.ceil() as usize).clamp(1, machine.p - 1);
                            if lo == hi {
                                let lane = push_cs(&mut cs, &model, lo);
                                Pending::Cs { ps: lo, lane }
                            } else {
                                let lo_lane = push_cs(&mut cs, &model, lo);
                                let hi_lane = push_cs(&mut cs, &model, hi);
                                Pending::CsOpt {
                                    lo,
                                    hi,
                                    lo_lane,
                                    hi_lane,
                                }
                            }
                        }
                    }
                }
            }
            Scenario::General(model) => match model.initial_state() {
                Err(_) => {
                    out[i] = Some(solve(s));
                    Pending::Direct
                }
                Ok(x0) => {
                    let lane = damped_models.len();
                    damped_models.push(model.clone());
                    damped_x0s.push(x0);
                    Pending::Damped(lane)
                }
            },
            Scenario::SharedMemory { machine, w } => {
                let gm =
                    GeneralModel::homogeneous_all_to_all(*machine, *w).with_protocol_processor();
                match gm.initial_state() {
                    Err(_) => {
                        out[i] = Some(solve(s));
                        Pending::Direct
                    }
                    Ok(x0) => {
                        let lane = damped_models.len();
                        damped_models.push(gm);
                        damped_x0s.push(x0);
                        Pending::Damped(lane)
                    }
                }
            }
        };
        pending.push(p);
    }

    // The three root-find groups. The inner loops are branch-free except
    // for the final infinity select, and read lane parameters from flat
    // arrays: each round evaluates every active lane back to back, which
    // is where the cross-lane ILP comes from. Where the scalar `eval_f`
    // early-returns ∞, the full formula is computed anyway and the select
    // discards it — `∞ − r` reproduces the scalar `g` exactly, and any
    // NaN in the discarded intermediate never escapes.
    let mut a2a_dense = DenseCols::<4>::new();
    let mut a2a_roots: Vec<_> = bracket_bisect_many(&a2a.specs, |lanes, xs, out| {
        let [w, st, so, beta] = a2a_dense.refresh(lanes, [&a2a.w, &a2a.st, &a2a.so, &a2a.beta]);
        // Equal-length subslices: lets the compiler drop the bounds checks
        // and vectorize the loop (`vdivpd` throughput is the whole point).
        let m = lanes.len();
        let (xs, out) = (&xs[..m], &mut out[..m]);
        let (w, st, so, beta) = (&w[..m], &st[..m], &so[..m], &beta[..m]);
        for j in 0..m {
            let r = xs[j];
            let (w, st, so, beta) = (w[j], st[j], so[j], beta[j]);
            let a = so / r;
            let det = 1.0 - a - a * a;
            let rq = so * (1.0 + 2.0 * beta * a + a + beta * a * a) / det;
            let ry = so * (1.0 + beta * a + beta * a * a) / det;
            let rw = (w + so * rq / r) / (1.0 - a);
            let f = rw + 2.0 * st + rq + ry;
            let bad = (r <= so) | (det <= 0.0);
            out[j] = (if bad { f64::INFINITY } else { f }) - r;
        }
    })
    .into_iter()
    .map(Some)
    .collect();

    let mut fj_dense = DenseCols::<5>::new();
    let mut fj_roots: Vec<_> = bracket_bisect_many(&fj.specs, |lanes, xs, out| {
        let [w, st, so, beta, k] =
            fj_dense.refresh(lanes, [&fj.w, &fj.st, &fj.so, &fj.beta, &fj.k]);
        let m = lanes.len();
        let (xs, out) = (&xs[..m], &mut out[..m]);
        let (w, st, so, beta, k) = (&w[..m], &st[..m], &so[..m], &beta[..m], &k[..m]);
        for j in 0..m {
            let r = xs[j];
            let (w, st, so, beta, k) = (w[j], st[j], so[j], beta[j], k[j]);
            let a = so / r;
            let det = (1.0 - k * a) * (1.0 - (k - 1.0) * a) - k * k * a * a;
            let rhs_q = so * (1.0 + 2.0 * beta * k * a);
            let rhs_y = so * (1.0 + beta * (2.0 * k - 1.0) * a);
            let rq = (rhs_q * (1.0 - (k - 1.0) * a) + k * a * rhs_y) / det;
            let ry = ((1.0 - k * a) * rhs_y + k * a * rhs_q) / det;
            let rw = (w + k * a * rq) / (1.0 - k * a);
            let f = rw + 2.0 * st + rq + k * ry;
            let bad = (r <= so) | (k * a >= 1.0) | (det <= 0.0);
            out[j] = (if bad { f64::INFINITY } else { f }) - r;
        }
    })
    .into_iter()
    .map(Some)
    .collect();

    let mut cs_dense = DenseCols::<6>::new();
    let mut cs_roots: Vec<_> = bracket_bisect_many(&cs.specs, |lanes, xs, out| {
        let [w, st, so, beta, pc, ps] =
            cs_dense.refresh(lanes, [&cs.w, &cs.st, &cs.so, &cs.beta, &cs.pc, &cs.ps]);
        let m = lanes.len();
        let (xs, out) = (&xs[..m], &mut out[..m]);
        let (w, st, so, beta) = (&w[..m], &st[..m], &so[..m], &beta[..m]);
        let (pc, ps) = (&pc[..m], &ps[..m]);
        for j in 0..m {
            let r = xs[j];
            let (w, st, so, beta) = (w[j], st[j], so[j], beta[j]);
            let lambda = pc[j] / (ps[j] * r);
            let denom = 1.0 - lambda * so;
            let rq = so * (1.0 + beta * lambda * so) / denom;
            let rq_sel = if denom <= 0.0 { f64::INFINITY } else { rq };
            out[j] = w + 2.0 * st + rq_sel + so - r;
        }
    })
    .into_iter()
    .map(Some)
    .collect();

    let mut damped_results: Vec<_> = solve_damped_many(
        &damped_x0s,
        |l, x, out| damped_models[l].apply_f(x, out),
        &GeneralModel::fixed_point_options(),
    )
    .into_iter()
    .map(Some)
    .collect();

    // Fan the lane results back out to their scenarios, building each
    // Prediction through the same decomposition helpers the scalar solve
    // uses.
    for (i, p) in pending.iter().enumerate() {
        match p {
            Pending::Direct => {}
            Pending::A2a(lane) => {
                let (machine, w) = match &scenarios[i] {
                    Scenario::AllToAll { machine, w } => (machine, w),
                    _ => unreachable!("lane routing is per-variant"),
                };
                let model = AllToAll::new(*machine, *w);
                out[i] = Some(match a2a_roots[*lane].take().expect("lane used once") {
                    Ok(root) => {
                        let sol = model.decompose_at(root);
                        Ok(Prediction {
                            r: sol.r,
                            x: machine.p as f64 * sol.x_per_node,
                            rw: sol.rw,
                            rq: sol.rq,
                            ry: sol.ry,
                            contention: sol.contention,
                            ps: None,
                            iterations: sol.iterations,
                        })
                    }
                    Err(e) => Err(ModelError::from(e)),
                });
            }
            Pending::Fj(lane) => {
                let (machine, w, k) = match &scenarios[i] {
                    Scenario::ForkJoin { machine, w, k } => (machine, w, k),
                    _ => unreachable!("lane routing is per-variant"),
                };
                let model = ForkJoin::new(*machine, *w, *k);
                out[i] = Some(match fj_roots[*lane].take().expect("lane used once") {
                    Ok(root) => {
                        let sol = model.decompose_at(root);
                        Ok(Prediction {
                            r: sol.r,
                            x: machine.p as f64 / sol.r,
                            rw: sol.rw,
                            rq: sol.rq,
                            ry: sol.ry,
                            contention: sol.r - model.contention_free(),
                            ps: None,
                            iterations: sol.iterations,
                        })
                    }
                    Err(e) => Err(ModelError::from(e)),
                });
            }
            Pending::Cs { ps, lane } => {
                let (machine, w) = match &scenarios[i] {
                    Scenario::ClientServer { machine, w, .. } => (machine, w),
                    _ => unreachable!("lane routing is per-variant"),
                };
                let model = ClientServer::new(*machine, *w);
                out[i] = Some(match cs_roots[*lane].take().expect("lane used once") {
                    Ok(root) => Ok(cs_prediction(machine, *w, *ps, model.point_at(*ps, root))),
                    Err(e) => Err(ModelError::from(e)),
                });
            }
            Pending::CsOpt {
                lo,
                hi,
                lo_lane,
                hi_lane,
            } => {
                let (machine, w) = match &scenarios[i] {
                    Scenario::ClientServer { machine, w, .. } => (machine, w),
                    _ => unreachable!("lane routing is per-variant"),
                };
                let model = ClientServer::new(*machine, *w);
                let lo_res = cs_roots[*lo_lane]
                    .take()
                    .expect("lane used once")
                    .map(|root| model.point_at(*lo, root));
                let hi_res = cs_roots[*hi_lane]
                    .take()
                    .expect("lane used once")
                    .map(|root| model.point_at(*hi, root));
                // Error order matches scalar optimal_servers: throughput(lo)
                // is queried first, so its failure wins.
                out[i] = Some((|| {
                    let pt_lo = lo_res.map_err(ModelError::from)?;
                    let pt_hi = hi_res.map_err(ModelError::from)?;
                    let (ps, pt) = if pt_lo.x >= pt_hi.x {
                        (*lo, pt_lo)
                    } else {
                        (*hi, pt_hi)
                    };
                    Ok(cs_prediction(machine, *w, ps, pt))
                })());
            }
            Pending::Damped(lane) => {
                let model = &damped_models[*lane];
                out[i] = Some(
                    match damped_results[*lane].take().expect("lane used once") {
                        Ok(conv) => {
                            let sol = model.decompose(&conv.x, conv.iterations);
                            Ok(match &scenarios[i] {
                                Scenario::General(_) => Prediction {
                                    r: sol.mean_r(),
                                    x: sol.system_throughput(),
                                    rw: f64::NAN,
                                    rq: f64::NAN,
                                    ry: f64::NAN,
                                    contention: f64::NAN,
                                    ps: None,
                                    iterations: sol.iterations,
                                },
                                Scenario::SharedMemory { machine, w } => Prediction {
                                    r: sol.r[0],
                                    x: sol.system_throughput(),
                                    rw: sol.rw[0],
                                    rq: sol.rq[0],
                                    ry: sol.ry[0],
                                    contention: sol.r[0] - machine.contention_free_response(*w),
                                    ps: None,
                                    iterations: sol.iterations,
                                },
                                _ => unreachable!("lane routing is per-variant"),
                            })
                        }
                        Err(e) => Err(ModelError::from(e)),
                    },
                );
            }
        }
    }

    out.into_iter()
        .map(|r| r.expect("every lane resolved"))
        .collect()
}

/// Lane-level suppressed-error check used by tests and callers that want to
/// know whether an error is an exhaustion worth retrying individually.
pub fn is_retryable(e: &ModelError) -> bool {
    matches!(
        e,
        ModelError::Solver(SolverError::Exhausted {
            contracting: true,
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    /// Bitwise equality: NaN components (General-model lanes) must match
    /// too, which `PartialEq` on f64 cannot express.
    fn assert_same(
        b: &Result<Prediction, ModelError>,
        a: &Result<Prediction, ModelError>,
        s: &Scenario,
    ) {
        match (b, a) {
            (Ok(b), Ok(a)) => {
                for (name, bv, av) in [
                    ("r", b.r, a.r),
                    ("x", b.x, a.x),
                    ("rw", b.rw, a.rw),
                    ("rq", b.rq, a.rq),
                    ("ry", b.ry, a.ry),
                    ("contention", b.contention, a.contention),
                ] {
                    assert_eq!(bv.to_bits(), av.to_bits(), "{name} differs for {s:?}");
                }
                assert_eq!(b.ps, a.ps);
                assert_eq!(b.iterations, a.iterations);
            }
            (Err(b), Err(a)) => assert_eq!(b, a, "errors differ for {s:?}"),
            (b, a) => panic!("Ok/Err mismatch for {s:?}: batched {b:?} vs scalar {a:?}"),
        }
    }

    fn assert_lane_identical(s: &Scenario) {
        let scalar = solve(s);
        let batched = solve_batch(std::slice::from_ref(s));
        assert_eq!(batched.len(), 1);
        assert_same(&batched[0], &scalar, s);
    }

    #[test]
    fn mixed_batch_matches_scalar_lane_for_lane() {
        let m = machine();
        let scenarios = vec![
            Scenario::AllToAll {
                machine: m,
                w: 1000.0,
            },
            Scenario::ClientServer {
                machine: m,
                w: 700.0,
                ps: Some(5),
            },
            Scenario::ClientServer {
                machine: m,
                w: 700.0,
                ps: None,
            },
            Scenario::ForkJoin {
                machine: m,
                w: 2000.0,
                k: 4,
            },
            Scenario::General(GeneralModel::client_server(m, 800.0, 4)),
            Scenario::SharedMemory {
                machine: m,
                w: 800.0,
            },
            // Closed forms and errors ride along untouched.
            Scenario::AllToAll {
                machine: Machine::new(8, 10.0, 0.0),
                w: 100.0,
            },
            Scenario::AllToAll {
                machine: m,
                w: -1.0,
            },
        ];
        let batched = solve_batch(&scenarios);
        for (s, b) in scenarios.iter().zip(&batched) {
            assert_same(b, &solve(s), s);
        }
        for s in &scenarios {
            assert_lane_identical(s);
        }
    }

    #[test]
    fn empty_batch() {
        assert!(solve_batch(&[]).is_empty());
    }

    #[test]
    fn cs_optimal_split_picks_the_scalar_winner() {
        // Sweep W so the continuous optimum crosses several integer splits;
        // the chosen ps must match optimal_servers exactly every time.
        for i in 0..40 {
            let w = 50.0 + 97.0 * i as f64;
            let s = Scenario::ClientServer {
                machine: machine(),
                w,
                ps: None,
            };
            let b = &solve_batch(std::slice::from_ref(&s))[0];
            let a = solve(&s);
            assert_eq!(b, &a, "W={w}");
        }
    }

    #[test]
    fn retryable_classification() {
        assert!(is_retryable(&ModelError::Solver(SolverError::Exhausted {
            x: vec![1.0],
            iterations: 10,
            residual: 0.1,
            contracting: true,
        })));
        assert!(!is_retryable(&ModelError::Solver(SolverError::Exhausted {
            x: vec![1.0],
            iterations: 10,
            residual: 0.1,
            contracting: false,
        })));
        assert!(!is_retryable(&ModelError::Degenerate("zero")));
    }
}
