//! The general LoPC model (Appendix A): per-node AMVA with an arbitrary
//! routing matrix, multi-hop requests, idle server threads, and the
//! protocol-processor (shared-memory) variant.
//!
//! For each thread `c` with work `W_c` and visit fractions `V[c][k]`
//! (`Σ_k V[c][k]` may exceed 1 for multi-hop requests):
//!
//! ```text
//! X_c   = 1 / R_c                                        (A.1)
//! X_ck  = V[c][k] · X_c                                  (A.2)
//! Uq_k  = So · Σ_c X_ck          Uy_k = X_k · So         (A.3, A.4)
//! Qq_k  = Rq_k · Σ_c X_ck        Qy_k = X_k · Ry_k       (A.5, A.6)
//! Rq_k  = So(1 + Qq_k + Qy_k + β(Uq_k + Uy_k))           (A.7 + §5.2)
//! Ry_k  = So(1 + Qq_k + β·Uq_k)                          (A.8 + §5.2)
//! Rw_c  = (W_c + So·Qq_c)/(1 − Uq_c)   (or W_c with a protocol processor)
//! R_c   = Rw_c + Σ_k V[c][k](St + Rq_k) + St + Ry_c      (A.10)
//! ```
//!
//! solved by damped fixed-point iteration (`lopc_solver::solve_damped`).

use crate::error::ModelError;
use crate::params::Machine;
use lopc_solver::{solve_damped, FixedPointOptions};

/// The general model input.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneralModel {
    /// Architectural parameters.
    pub machine: Machine,
    /// Per-node thread work `W_c`; `None` marks an idle (pure server)
    /// thread that never issues requests.
    pub w: Vec<Option<f64>>,
    /// Visit fractions: `v[c][k]` is the mean number of times one of thread
    /// `c`'s requests is served at node `k` per cycle. Row sums may exceed 1
    /// (multi-hop). Rows of idle threads must be all zero.
    pub v: Vec<Vec<f64>>,
    /// Model a per-node protocol processor: handlers never interrupt the
    /// computation thread (`Rw = W`, §5.1).
    pub protocol_processor: bool,
}

/// Per-node / per-thread solution of the general model (Table 4.1).
#[derive(Clone, Debug)]
pub struct GeneralSolution {
    /// Cycle response time per thread (`NaN` for idle threads).
    pub r: Vec<f64>,
    /// Throughput per thread (0 for idle threads).
    pub x: Vec<f64>,
    /// Compute residence per thread (`NaN` for idle threads).
    pub rw: Vec<f64>,
    /// Request-handler response per node.
    pub rq: Vec<f64>,
    /// Reply-handler response per node.
    pub ry: Vec<f64>,
    /// Request-handler utilisation per node.
    pub uq: Vec<f64>,
    /// Reply-handler utilisation per node.
    pub uy: Vec<f64>,
    /// Request-handler population per node.
    pub qq: Vec<f64>,
    /// Reply-handler population per node.
    pub qy: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl GeneralSolution {
    /// System throughput `Σ_c X_c` (requests per cycle).
    pub fn system_throughput(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Mean response time over active threads.
    pub fn mean_r(&self) -> f64 {
        let active: Vec<f64> = self.r.iter().copied().filter(|r| r.is_finite()).collect();
        if active.is_empty() {
            f64::NAN
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

impl GeneralModel {
    /// Homogeneous all-to-all instance: every thread works `w` and sends to
    /// every other node uniformly (`V[c][k] = 1/(P−1)`). Solving this must
    /// agree with the §5 closed form — a cross-check the tests enforce.
    pub fn homogeneous_all_to_all(machine: Machine, w: f64) -> Self {
        let p = machine.p;
        let frac = 1.0 / (p - 1) as f64;
        let v = (0..p)
            .map(|c| {
                (0..p)
                    .map(|k| if k == c { 0.0 } else { frac })
                    .collect::<Vec<_>>()
            })
            .collect();
        GeneralModel {
            machine,
            w: vec![Some(w); p],
            v,
            protocol_processor: false,
        }
    }

    /// Client-server instance: nodes `0..ps` are idle servers, the rest are
    /// clients doing `w` between uniform requests to the servers (§6).
    pub fn client_server(machine: Machine, w: f64, ps: usize) -> Self {
        let p = machine.p;
        assert!(ps >= 1 && ps < p, "ps must be in 1..p");
        let frac = 1.0 / ps as f64;
        let mut w_vec = vec![None; p];
        let mut v = vec![vec![0.0; p]; p];
        for c in ps..p {
            w_vec[c] = Some(w);
            for row in v[c].iter_mut().take(ps) {
                *row = frac;
            }
        }
        GeneralModel {
            machine,
            w: w_vec,
            v,
            protocol_processor: false,
        }
    }

    /// Multi-hop instance: like all-to-all but each request is served at
    /// `hops` nodes before the reply (uniform forwarding), so every row sums
    /// to `hops`.
    pub fn multi_hop(machine: Machine, w: f64, hops: u32) -> Self {
        let mut model = Self::homogeneous_all_to_all(machine, w);
        for row in &mut model.v {
            for x in row.iter_mut() {
                *x *= hops as f64;
            }
        }
        model
    }

    /// Enable the protocol-processor variant (§5.1).
    pub fn with_protocol_processor(mut self) -> Self {
        self.protocol_processor = true;
        self
    }

    /// Validate shapes and ranges.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.machine.validate()?;
        let p = self.machine.p;
        if self.w.len() != p {
            return Err(ModelError::InvalidParameter("w must have length p"));
        }
        if self.v.len() != p {
            return Err(ModelError::InvalidParameter("v must be p x p"));
        }
        let mut any_active = false;
        for (c, row) in self.v.iter().enumerate() {
            if row.len() != p {
                return Err(ModelError::InvalidParameter("v must be p x p"));
            }
            for &x in row {
                if !x.is_finite() || x < 0.0 {
                    return Err(ModelError::InvalidParameter(
                        "visit fractions must be finite and >= 0",
                    ));
                }
            }
            if row[c] != 0.0 {
                return Err(ModelError::InvalidParameter(
                    "threads must not request from their own node",
                ));
            }
            match self.w[c] {
                Some(w) => {
                    if !w.is_finite() || w < 0.0 {
                        return Err(ModelError::InvalidParameter("w must be finite and >= 0"));
                    }
                    if row.iter().sum::<f64>() <= 0.0 {
                        return Err(ModelError::InvalidParameter(
                            "active threads need at least one destination",
                        ));
                    }
                    any_active = true;
                }
                None => {
                    if row.iter().any(|&x| x != 0.0) {
                        return Err(ModelError::InvalidParameter(
                            "idle threads must have an all-zero visit row",
                        ));
                    }
                }
            }
        }
        if !any_active {
            return Err(ModelError::InvalidParameter("no active threads"));
        }
        Ok(())
    }

    /// Solve the Appendix A system.
    pub fn solve(&self) -> Result<GeneralSolution, ModelError> {
        let x0 = self.initial_state()?;
        let conv = solve_damped(
            x0,
            |state, out| self.apply_f(state, out),
            &Self::fixed_point_options(),
        )?;
        Ok(self.decompose(&conv.x, conv.iterations))
    }

    /// The damping schedule of the Appendix A iteration; one source of truth
    /// for the scalar and batched solve paths.
    pub(crate) fn fixed_point_options() -> FixedPointOptions {
        FixedPointOptions {
            damping: 0.5,
            tol: 1e-11,
            max_iter: 200_000,
        }
    }

    /// Entry checks plus the contention-free initial state: everything the
    /// scalar solve does before its first fixed-point iteration.
    ///
    /// State layout: `[rq[0..p] | ry[0..p] | r[0..p]]`; idle threads keep a
    /// pinned r of 1.0 that nothing reads.
    pub(crate) fn initial_state(&self) -> Result<Vec<f64>, ModelError> {
        self.validate()?;
        let p = self.machine.p;
        let so = self.machine.s_o;
        let st = self.machine.s_l;

        // Contention-free initial response per active thread.
        let init_r = |c: usize| -> f64 {
            let hops: f64 = self.v[c].iter().sum();
            self.w[c].unwrap_or(0.0) + hops * (st + so) + st + so
        };
        // Degenerate: a zero-cost cycle has no steady state.
        for c in 0..p {
            if self.w[c].is_some() && init_r(c) <= 0.0 {
                return Err(ModelError::Degenerate("zero-cost cycle"));
            }
        }

        let mut x0 = vec![so.max(1e-12); 2 * p];
        for c in 0..p {
            x0.push(if self.w[c].is_some() { init_r(c) } else { 1.0 });
        }
        Ok(x0)
    }

    /// One application of the Appendix A map `F` at `state`, written into
    /// `out`. This is the function handed to the fixed-point driver — scalar
    /// and batched paths share it, so their per-iteration arithmetic is
    /// identical by construction.
    #[allow(clippy::needless_range_loop)] // indexing several parallel arrays
    pub(crate) fn apply_f(&self, state: &[f64], out: &mut [f64]) {
        let p = self.machine.p;
        let so = self.machine.s_o;
        let st = self.machine.s_l;
        let beta = self.machine.beta();
        let eps = 1e-9;
        let (rq, rest) = state.split_at(p);
        let (ry, r) = rest.split_at(p);

        // Throughputs.
        let mut x = vec![0.0; p];
        for c in 0..p {
            if self.w[c].is_some() {
                x[c] = 1.0 / r[c].max(eps);
            }
        }
        // Arrival rates of requests (lambda_q) and replies (lambda_y).
        let mut lambda_q = vec![0.0; p];
        for c in 0..p {
            if x[c] > 0.0 {
                for k in 0..p {
                    lambda_q[k] += self.v[c][k] * x[c];
                }
            }
        }
        for k in 0..p {
            let lq = lambda_q[k];
            let ly = x[k];
            let uqk = so * lq;
            let uyk = so * ly;
            let qqk = rq[k] * lq;
            let qyk = ry[k] * ly;
            out[k] = so * (1.0 + qqk + qyk + beta * (uqk + uyk));
            out[p + k] = so * (1.0 + qqk + beta * uqk);
        }
        for c in 0..p {
            out[2 * p + c] = match self.w[c] {
                None => 1.0,
                Some(w) => {
                    let lq = lambda_q[c];
                    let uqc = (so * lq).min(1.0 - eps);
                    let qqc = rq[c] * lq;
                    let rw = if self.protocol_processor {
                        w
                    } else {
                        (w + so * qqc) / (1.0 - uqc)
                    };
                    let mut total = rw + st + ry[c];
                    for k in 0..p {
                        let vck = self.v[c][k];
                        if vck > 0.0 {
                            total += vck * (st + rq[k]);
                        }
                    }
                    total
                }
            };
        }
    }

    /// Unpack a converged state vector and recompute the derived quantities
    /// at the fixed point.
    #[allow(clippy::needless_range_loop)] // indexing several parallel arrays
    pub(crate) fn decompose(&self, state: &[f64], iterations: usize) -> GeneralSolution {
        let p = self.machine.p;
        let so = self.machine.s_o;
        let eps = 1e-9;
        let rq = state[..p].to_vec();
        let ry = state[p..2 * p].to_vec();
        let mut r = vec![f64::NAN; p];
        let mut x = vec![0.0; p];
        let mut rw = vec![f64::NAN; p];
        for c in 0..p {
            if self.w[c].is_some() {
                r[c] = state[2 * p + c];
                x[c] = 1.0 / r[c];
            }
        }
        let mut lambda_q = vec![0.0; p];
        for c in 0..p {
            if x[c] > 0.0 {
                for k in 0..p {
                    lambda_q[k] += self.v[c][k] * x[c];
                }
            }
        }
        let mut uq = vec![0.0; p];
        let mut uy = vec![0.0; p];
        let mut qq = vec![0.0; p];
        let mut qy = vec![0.0; p];
        for k in 0..p {
            uq[k] = so * lambda_q[k];
            uy[k] = so * x[k];
            qq[k] = rq[k] * lambda_q[k];
            qy[k] = ry[k] * x[k];
        }
        for c in 0..p {
            if let Some(w) = self.w[c] {
                rw[c] = if self.protocol_processor {
                    w
                } else {
                    (w + so * qq[c]) / (1.0 - uq[c].min(1.0 - eps))
                };
            }
        }

        GeneralSolution {
            r,
            x,
            rw,
            rq,
            ry,
            uq,
            uy,
            qq,
            qy,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_to_all::AllToAll;
    use crate::client_server::ClientServer;

    fn machine() -> Machine {
        Machine::new(16, 25.0, 200.0).with_c2(0.0)
    }

    /// The general model restricted to the homogeneous pattern must agree
    /// with the §5 closed form.
    #[test]
    fn matches_all_to_all_closed_form() {
        for &w in &[0.0, 100.0, 1000.0] {
            for &c2 in &[0.0, 1.0, 2.0] {
                let m = machine().with_c2(c2);
                let general = GeneralModel::homogeneous_all_to_all(m, w).solve().unwrap();
                let closed = AllToAll::new(m, w).solve().unwrap();
                let r_general = general.r[0];
                assert!(
                    (r_general - closed.r).abs() / closed.r < 1e-6,
                    "W={w} C²={c2}: general {} vs closed {}",
                    r_general,
                    closed.r
                );
            }
        }
    }

    /// All threads identical => identical per-node solution.
    #[test]
    fn homogeneous_solution_is_symmetric() {
        let sol = GeneralModel::homogeneous_all_to_all(machine(), 500.0)
            .solve()
            .unwrap();
        for k in 1..16 {
            assert!((sol.r[k] - sol.r[0]).abs() < 1e-8);
            assert!((sol.rq[k] - sol.rq[0]).abs() < 1e-8);
            assert!((sol.uq[k] - sol.uq[0]).abs() < 1e-8);
        }
    }

    /// The general model's client-server instance must agree with the §6
    /// scalar recursion.
    #[test]
    fn matches_client_server_recursion() {
        let m = Machine::new(32, 50.0, 131.0).with_c2(0.0);
        let w = 1000.0;
        for ps in [1usize, 4, 8, 16, 24] {
            let general = GeneralModel::client_server(m, w, ps).solve().unwrap();
            let scalar = ClientServer::new(m, w).throughput(ps).unwrap();
            let x_general = general.system_throughput();
            assert!(
                (x_general - scalar.x).abs() / scalar.x < 1e-6,
                "ps={ps}: general X={x_general} vs scalar {}",
                scalar.x
            );
            // Server quantities agree too.
            assert!((general.rq[0] - scalar.rq).abs() / scalar.rq < 1e-6);
            assert!((general.qq[0] - scalar.qs).abs() < 1e-6);
        }
    }

    /// Multi-hop: each extra hop adds at least (St + So) to the cycle.
    #[test]
    fn multi_hop_grows_with_hops() {
        let m = machine();
        let r1 = GeneralModel::multi_hop(m, 500.0, 1).solve().unwrap().r[0];
        let r2 = GeneralModel::multi_hop(m, 500.0, 2).solve().unwrap().r[0];
        let r3 = GeneralModel::multi_hop(m, 500.0, 3).solve().unwrap().r[0];
        assert!(r2 - r1 >= 225.0 - 1e-6, "r2-r1 = {}", r2 - r1);
        assert!(r3 - r2 >= 225.0 - 1e-6);
    }

    /// Protocol processor removes compute interference: Rw == W, and the
    /// cycle is never slower than the message-passing variant.
    #[test]
    fn protocol_processor_rw_is_w() {
        let m = machine().with_c2(1.0);
        let w = 400.0;
        let mp = GeneralModel::homogeneous_all_to_all(m, w).solve().unwrap();
        let pp = GeneralModel::homogeneous_all_to_all(m, w)
            .with_protocol_processor()
            .solve()
            .unwrap();
        assert!((pp.rw[0] - w).abs() < 1e-9);
        assert!(mp.rw[0] > w, "message passing must show interference");
        assert!(pp.r[0] < mp.r[0]);
    }

    /// Hotspot: a node that receives extra traffic shows higher utilisation
    /// and queueing than its peers.
    #[test]
    fn hotspot_asymmetry() {
        let m = machine();
        let p = m.p;
        // 50% of every thread's requests go to node 0, rest uniform.
        let mut model = GeneralModel::homogeneous_all_to_all(m, 500.0);
        for c in 1..p {
            for k in 0..p {
                if k != c {
                    model.v[c][k] = if k == 0 { 0.5 } else { 0.5 / (p - 2) as f64 };
                }
            }
        }
        let sol = model.solve().unwrap();
        assert!(sol.uq[0] > 2.0 * sol.uq[1], "hotspot utilisation");
        assert!(sol.qq[0] > sol.qq[1], "hotspot queueing");
        // Node 0's own thread suffers the most compute interference.
        assert!(sol.rw[0] > sol.rw[1]);
    }

    /// Little's law self-consistency at the fixed point: Qq = λq · Rq.
    #[test]
    fn littles_law_at_fixed_point() {
        let sol = GeneralModel::homogeneous_all_to_all(machine(), 300.0)
            .solve()
            .unwrap();
        for k in 0..16 {
            let lambda_q = sol.uq[k] / 200.0; // Uq = So λ
            assert!((sol.qq[k] - lambda_q * sol.rq[k]).abs() < 1e-9);
        }
    }

    /// Validation catches malformed inputs.
    #[test]
    fn validation_errors() {
        let m = machine();
        let mut bad = GeneralModel::homogeneous_all_to_all(m, 100.0);
        bad.v[0][0] = 0.5; // self-visit
        assert!(bad.solve().is_err());

        let mut bad = GeneralModel::homogeneous_all_to_all(m, 100.0);
        bad.w[3] = None; // idle thread with non-zero row
        assert!(bad.solve().is_err());

        let mut bad = GeneralModel::homogeneous_all_to_all(m, 100.0);
        bad.v.pop();
        assert!(bad.solve().is_err());

        let mut bad = GeneralModel::homogeneous_all_to_all(m, 100.0);
        for w in &mut bad.w {
            *w = None;
        }
        for row in &mut bad.v {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
        assert!(bad.solve().is_err());
    }

    /// Idle threads report NaN response and zero throughput.
    #[test]
    fn idle_threads_have_no_cycle() {
        let m = Machine::new(8, 10.0, 100.0);
        let sol = GeneralModel::client_server(m, 500.0, 2).solve().unwrap();
        assert!(sol.r[0].is_nan());
        assert!(sol.r[1].is_nan());
        assert_eq!(sol.x[0], 0.0);
        assert!(sol.r[2].is_finite());
        assert!(sol.mean_r().is_finite());
    }
}
