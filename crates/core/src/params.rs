//! Model parameters: the architectural characterisation (Table 3.1) and the
//! algorithmic characterisation (§3) of the thesis.

use crate::ModelError;

/// Architectural parameters of the LoPC model (Table 3.1).
///
/// `St`/`s_l` is the LogP `L`; `So`/`s_o` is the LogP `o` reinterpreted as the
/// cost of taking a message interrupt and running the handler; `P` is the
/// number of processors; `C²` is the optional squared coefficient of
/// variation of handler service times (1 = exponential, the default; 0 =
/// constant). The LogP `g` (bandwidth gap) is assumed 0 — balanced network
/// interfaces (§3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Machine {
    /// Number of processors `P`.
    pub p: usize,
    /// Average wire latency `St` (LogP `L`), in cycles.
    pub s_l: f64,
    /// Average handler dispatch cost `So` (LogP `o`), in cycles.
    pub s_o: f64,
    /// Squared coefficient of variation of handler service time `C²`.
    pub c2: f64,
}

impl Machine {
    /// A machine with exponential handlers (`C² = 1`, the LoPC default).
    pub fn new(p: usize, s_l: f64, s_o: f64) -> Self {
        Machine {
            p,
            s_l,
            s_o,
            c2: 1.0,
        }
    }

    /// Override the handler service-time variability.
    pub fn with_c2(mut self, c2: f64) -> Self {
        self.c2 = c2;
        self
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.p < 2 {
            return Err(ModelError::InvalidParameter("p must be >= 2"));
        }
        if !self.s_l.is_finite() || self.s_l < 0.0 {
            return Err(ModelError::InvalidParameter("s_l must be finite and >= 0"));
        }
        if !self.s_o.is_finite() || self.s_o < 0.0 {
            return Err(ModelError::InvalidParameter("s_o must be finite and >= 0"));
        }
        if !self.c2.is_finite() || self.c2 < 0.0 {
            return Err(ModelError::InvalidParameter("c2 must be finite and >= 0"));
        }
        Ok(())
    }

    /// The §5.2 residual-life weight `β = (C² − 1)/2` that appears in every
    /// corrected response-time equation.
    #[inline]
    pub fn beta(&self) -> f64 {
        0.5 * (self.c2 - 1.0)
    }
}

/// Algorithmic parameters (§3): the LoPC characterisation of one program.
///
/// `W = m/n` where `m` is total local work and `n` the number of blocking
/// requests issued by each node. The §3 worked example (matrix–vector
/// multiply) is provided by `lopc-workloads`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Algorithm {
    /// Average work between blocking requests, `W`, in cycles.
    pub w: f64,
    /// Total requests per node, `n`.
    pub n: u64,
}

impl Algorithm {
    /// Construct and validate.
    pub fn new(w: f64, n: u64) -> Self {
        Algorithm { w, n }
    }

    /// Derive `(W, n)` from total per-node operation counts: `m` local
    /// operations of `cost` cycles each, and `n` messages (the §3 recipe
    /// `W = m·cost / n`).
    pub fn from_op_counts(m: u64, cost: f64, n: u64) -> Self {
        let w = if n == 0 {
            0.0
        } else {
            m as f64 * cost / n as f64
        };
        Algorithm { w, n }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.w.is_finite() || self.w < 0.0 {
            return Err(ModelError::InvalidParameter("w must be finite and >= 0"));
        }
        Ok(())
    }

    /// Total application runtime given a per-cycle response time `r`
    /// (`n·R`, §4).
    pub fn total_runtime(&self, r: f64) -> f64 {
        self.n as f64 * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_defaults_to_exponential() {
        let m = Machine::new(32, 25.0, 200.0);
        assert_eq!(m.c2, 1.0);
        assert_eq!(m.beta(), 0.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn with_c2_overrides() {
        let m = Machine::new(32, 25.0, 200.0).with_c2(0.0);
        assert_eq!(m.c2, 0.0);
        assert_eq!(m.beta(), -0.5);
    }

    #[test]
    fn machine_validation_catches_bad_values() {
        assert!(Machine::new(1, 0.0, 0.0).validate().is_err());
        assert!(Machine::new(2, -1.0, 0.0).validate().is_err());
        assert!(Machine::new(2, 0.0, f64::NAN).validate().is_err());
        assert!(Machine::new(2, 0.0, 0.0).with_c2(-1.0).validate().is_err());
    }

    #[test]
    fn algorithm_from_op_counts_matches_section3() {
        // Matrix-vector multiply, N x N cyclically distributed over P:
        // m = (N/P)·N multiply-adds, n = (N/P)(P-1) puts, so
        // W = cost · N/(P-1).
        let (n_dim, p, cost) = (1024u64, 32u64, 1.0);
        let m_ops = (n_dim / p) * n_dim;
        let n_msgs = (n_dim / p) * (p - 1);
        let alg = Algorithm::from_op_counts(m_ops, cost, n_msgs);
        let expected_w = cost * n_dim as f64 / (p - 1) as f64;
        assert!((alg.w - expected_w).abs() < 1e-9);
    }

    #[test]
    fn zero_messages_gives_zero_w() {
        let alg = Algorithm::from_op_counts(100, 2.0, 0);
        assert_eq!(alg.w, 0.0);
    }

    #[test]
    fn total_runtime_is_n_times_r() {
        let alg = Algorithm::new(100.0, 50);
        assert_eq!(alg.total_runtime(1500.0), 75_000.0);
    }

    #[test]
    fn algorithm_validation() {
        assert!(Algorithm::new(-1.0, 1).validate().is_err());
        assert!(Algorithm::new(0.0, 0).validate().is_ok());
    }
}
