//! **Extension (§7 future work):** non-blocking, overlapped communication via
//! fork-join fan-out.
//!
//! The thesis closes by proposing to extend LoPC "to model non-blocking
//! requests" (citing Heidelberger & Trivedi's treatment of asynchronous
//! tasks). This module implements the simplest useful member of that family:
//! each thread computes `W`, then issues `k` requests *simultaneously* to
//! uniformly random nodes and blocks until **all** `k` replies have been
//! handled (a fork-join barrier per cycle). `k = 1` is exactly the blocking
//! model of §5.
//!
//! The AMVA treatment follows the §5 recipe with the rates scaled by the
//! batch size (`λq = λy = k/R` per node), plus two structural changes:
//!
//! * an arriving **reply** can now queue behind its sibling replies; the
//!   self-exclusion that zeroed the reply-queue term in eq. 5.6 becomes a
//!   `(k−1)/k` factor;
//! * the cycle's communication phase overlaps the `k` request round-trips
//!   but the `k` reply handlers **serialise** on the home CPU, so the cycle
//!   closes after `Rq + k·Ry` (the request-overlap / reply-drain
//!   approximation):
//!
//! ```text
//! a  = So/R
//! Rq·(1 − k·a) − k·a·Ry          = So(1 + 2βk·a)
//! −k·a·Rq + Ry·(1 − (k−1)·a)    = So(1 + β(2k−1)·a)
//! Rw = (W + k·a·Rq) / (1 − k·a)                       (BKT)
//! F[R] = Rw + 2·St + Rq + k·Ry
//! ```
//!
//! This is an *approximation*, not a theorem from the thesis; the
//! `pipelining` bench and the integration tests report its measured accuracy
//! against the simulator (typically within ~10 % for moderate `k`, degrading
//! as the home node saturates with reply processing).

use crate::error::ModelError;
use crate::params::Machine;
use lopc_solver::{bisect, bracket_upward, Root};

/// Homogeneous all-to-all with per-cycle fan-out `k` (fork-join).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForkJoin {
    /// Architectural parameters.
    pub machine: Machine,
    /// Average work between request batches.
    pub w: f64,
    /// Requests issued per cycle.
    pub k: u32,
}

/// Solution of the fork-join model.
#[derive(Clone, Copy, Debug)]
pub struct ForkJoinSolution {
    /// Cycle response time.
    pub r: f64,
    /// Compute residence (`Rw`).
    pub rw: f64,
    /// Per-request server response (`Rq`).
    pub rq: f64,
    /// Per-reply home response (`Ry`).
    pub ry: f64,
    /// Request-handler utilisation per node (`k·So/R`).
    pub uq: f64,
    /// Requests per cycle per node = `k/R`.
    pub x_requests: f64,
    /// Bisection iterations.
    pub iterations: usize,
}

impl ForkJoin {
    /// Fork-join model with fan-out `k ≥ 1`.
    pub fn new(machine: Machine, w: f64, k: u32) -> Self {
        ForkJoin { machine, w, k }
    }

    /// Parameter validation.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.machine.validate()?;
        if self.k == 0 {
            return Err(ModelError::InvalidParameter("k must be >= 1"));
        }
        if self.k as usize >= self.machine.p {
            return Err(ModelError::InvalidParameter(
                "fan-out must be smaller than the machine",
            ));
        }
        if !self.w.is_finite() || self.w < 0.0 {
            return Err(ModelError::InvalidParameter("w must be finite and >= 0"));
        }
        Ok(())
    }

    /// Contention-free cycle cost with full request overlap:
    /// `W + 2St + So + k·So` (one request round-trip visible, `k` serial
    /// reply handlers).
    pub fn contention_free(&self) -> f64 {
        self.w + 2.0 * self.machine.s_l + self.machine.s_o * (1.0 + self.k as f64)
    }

    /// Fully-serialised upper reference: `k` blocking round-trips
    /// (`W + k·(2St + 2So)`) **without** contention — what a program doing
    /// the requests one at a time would pay at minimum.
    pub fn serial_reference(&self) -> f64 {
        self.w + self.k as f64 * (2.0 * self.machine.s_l + 2.0 * self.machine.s_o)
    }

    /// Evaluate the recursion `F[R]` (∞ at or below saturation).
    pub fn eval_f(&self, r: f64) -> f64 {
        let so = self.machine.s_o;
        let st = self.machine.s_l;
        let k = self.k as f64;
        if so == 0.0 {
            return self.w + 2.0 * st;
        }
        if r <= so {
            return f64::INFINITY;
        }
        let a = so / r;
        if k * a >= 1.0 {
            return f64::INFINITY;
        }
        let det = (1.0 - k * a) * (1.0 - (k - 1.0) * a) - k * k * a * a;
        if det <= 0.0 {
            return f64::INFINITY;
        }
        let beta = self.machine.beta();
        let rhs_q = so * (1.0 + 2.0 * beta * k * a);
        let rhs_y = so * (1.0 + beta * (2.0 * k - 1.0) * a);
        let rq = (rhs_q * (1.0 - (k - 1.0) * a) + k * a * rhs_y) / det;
        let ry = ((1.0 - k * a) * rhs_y + k * a * rhs_q) / det;
        let rw = (self.w + k * a * rq) / (1.0 - k * a);
        rw + 2.0 * st + rq + k * ry
    }

    /// Solve for the fixed point.
    pub fn solve(&self) -> Result<ForkJoinSolution, ModelError> {
        self.validate()?;
        let so = self.machine.s_o;
        let k = self.k as f64;
        let lower = self.contention_free();
        if lower == 0.0 {
            return Err(ModelError::Degenerate("zero-cost cycle"));
        }
        if so == 0.0 {
            let r = self.w + 2.0 * self.machine.s_l;
            return Ok(ForkJoinSolution {
                r,
                rw: self.w,
                rq: 0.0,
                ry: 0.0,
                uq: 0.0,
                x_requests: k / r,
                iterations: 0,
            });
        }
        let g = |r: f64| self.eval_f(r) - r;
        let hi = bracket_upward(g, lower, (4.0 + self.machine.c2) * k * so, 96)?;
        let root = bisect(g, lower, hi, 1e-10 * lower.max(1.0), 200)?;
        Ok(self.decompose_at(root))
    }

    /// Recompose the solution at a solved fixed point of `F[R] − R`. Shared
    /// by [`ForkJoin::solve`] and the batched `scenario::solve_batch` path.
    pub(crate) fn decompose_at(&self, root: Root) -> ForkJoinSolution {
        let so = self.machine.s_o;
        let k = self.k as f64;
        let r = root.x;
        let a = so / r;
        let det = (1.0 - k * a) * (1.0 - (k - 1.0) * a) - k * k * a * a;
        let beta = self.machine.beta();
        let rhs_q = so * (1.0 + 2.0 * beta * k * a);
        let rhs_y = so * (1.0 + beta * (2.0 * k - 1.0) * a);
        let rq = (rhs_q * (1.0 - (k - 1.0) * a) + k * a * rhs_y) / det;
        let ry = ((1.0 - k * a) * rhs_y + k * a * rhs_q) / det;
        let rw = (self.w + k * a * rq) / (1.0 - k * a);
        ForkJoinSolution {
            r,
            rw,
            rq,
            ry,
            uq: k * a,
            x_requests: k / r,
            iterations: root.iterations,
        }
    }

    /// Speedup of overlapping over issuing the same `k` requests as serial
    /// blocking cycles (each with `W/k` work, solved with the contended §5
    /// model): `R_serial / R_forkjoin`. Greater than 1 whenever hiding
    /// round-trips wins; approaches 1 as `W` dominates the cycle.
    pub fn speedup_vs_serial(&self) -> Result<f64, ModelError> {
        let r = self.solve()?.r;
        let serial = crate::all_to_all::AllToAll::new(self.machine, self.w / self.k as f64)
            .solve()?
            .r
            * self.k as f64;
        Ok(serial / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_to_all::AllToAll;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    /// k = 1 must agree exactly with the §5 blocking model.
    #[test]
    fn k1_reduces_to_blocking_model() {
        for &w in &[0.0, 100.0, 1000.0] {
            for &c2 in &[0.0, 1.0, 2.0] {
                let m = machine().with_c2(c2);
                let fj = ForkJoin::new(m, w, 1).solve().unwrap();
                let a2a = AllToAll::new(m, w).solve().unwrap();
                assert!(
                    (fj.r - a2a.r).abs() < 1e-6 * a2a.r,
                    "W={w} C2={c2}: fork-join {} vs blocking {}",
                    fj.r,
                    a2a.r
                );
            }
        }
    }

    /// R grows with k, but far slower than k blocking round trips: the whole
    /// point of overlapping.
    #[test]
    fn overlap_beats_serial() {
        let w = 2000.0;
        let r1 = ForkJoin::new(machine(), w, 1).solve().unwrap().r;
        for k in [2u32, 4, 8] {
            let fj = ForkJoin::new(machine(), w, k);
            let rk = fj.solve().unwrap().r;
            assert!(rk > r1, "more requests cost more");
            // A serial program would pay ~k·(2St+2So) of communication.
            let serial = AllToAll::new(machine(), w / k as f64).solve().unwrap().r * k as f64;
            assert!(
                rk < serial,
                "k={k}: fork-join {rk} must beat serialised {serial}"
            );
        }
    }

    /// Utilisation scales with k and stays subcritical.
    #[test]
    fn utilisation_scales_with_k() {
        let w = 4000.0;
        let u2 = ForkJoin::new(machine(), w, 2).solve().unwrap().uq;
        let u6 = ForkJoin::new(machine(), w, 6).solve().unwrap().uq;
        assert!(u6 > 2.0 * u2, "u6={u6} vs u2={u2}");
        assert!(u6 < 1.0);
    }

    /// Overlapping beats serial issue whenever communication is a material
    /// part of the cycle, and the advantage fades as W dominates.
    #[test]
    fn speedup_vs_serial_behaviour() {
        let comm_bound = ForkJoin::new(machine(), 500.0, 4)
            .speedup_vs_serial()
            .unwrap();
        let work_bound = ForkJoin::new(machine(), 20_000.0, 4)
            .speedup_vs_serial()
            .unwrap();
        assert!(
            comm_bound > 1.15,
            "communication-bound speedup {comm_bound}"
        );
        assert!(work_bound < comm_bound);
        assert!(work_bound > 0.95, "work-bound speedup {work_bound}");
        // k = 1 is the identity.
        let k1 = ForkJoin::new(machine(), 500.0, 1)
            .speedup_vs_serial()
            .unwrap();
        assert!((k1 - 1.0).abs() < 1e-9);
    }

    /// Validation errors.
    #[test]
    fn validation() {
        assert!(ForkJoin::new(machine(), 1.0, 0).solve().is_err());
        assert!(ForkJoin::new(machine(), 1.0, 32).solve().is_err());
        assert!(ForkJoin::new(machine(), -1.0, 2).solve().is_err());
        // Zero-handler degenerate case.
        let m = Machine::new(8, 10.0, 0.0);
        let sol = ForkJoin::new(m, 100.0, 3).solve().unwrap();
        assert_eq!(sol.r, 120.0);
    }

    /// The fixed point satisfies F[R*] = R*.
    #[test]
    fn solution_is_fixed_point() {
        let fj = ForkJoin::new(machine(), 1500.0, 4);
        let sol = fj.solve().unwrap();
        assert!((fj.eval_f(sol.r) - sol.r).abs() < 1e-6);
    }
}
