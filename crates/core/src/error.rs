//! Model error type.

use lopc_solver::SolverError;

/// Why a model could not be evaluated.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A parameter failed validation.
    InvalidParameter(&'static str),
    /// The model is degenerate (e.g. all costs zero: response time 0).
    Degenerate(&'static str),
    /// The underlying numerical solve failed.
    Solver(SolverError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ModelError::Degenerate(msg) => write!(f, "degenerate model: {msg}"),
            ModelError::Solver(e) => write!(f, "solver failure: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for ModelError {
    fn from(e: SolverError) -> Self {
        ModelError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ModelError::InvalidParameter("p must be >= 2");
        assert!(e.to_string().contains("p must be"));
        assert!(e.source().is_none());

        let e: ModelError = SolverError::InvalidInput("x").into();
        assert!(e.to_string().contains("solver failure"));
        assert!(e.source().is_some());
    }
}
