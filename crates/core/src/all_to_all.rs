//! Homogeneous all-to-all communication: the closed-form LoPC analysis of §5.
//!
//! Every node computes for `W` on average, then sends a blocking request to a
//! uniformly random other node. By symmetry, requests and replies each arrive
//! at every node at rate `1/R`, which collapses the Appendix A system to one
//! scalar recursion `F[R]` (eq. 5.11). `F` is continuous and strictly
//! decreasing for `R` above the contention-free cost, so it has a unique
//! stable fixed point `R*` bounded by (eq. 5.12, for `C² = 0`):
//!
//! ```text
//! W + 2·St + 2·So  <  R*  <  W + 2·St + 3.46·So
//! ```
//!
//! The derivation, for general `C²` with `β = (C²−1)/2` and `a = So/R`
//! (per-node arrival rate of requests and of replies is `1/R`, so
//! `Uq = Uy = a` and `Qq = Rq/R`, `Qy = Ry/R`):
//!
//! ```text
//! Rq = So(1 + Qq + Qy + β(Uq + Uy))      (eq. 5.9)
//! Ry = So(1 + Qq + β·Uq)                 (eq. 5.10)
//! Rw = (W + So·Qq) / (1 − Uq)            (eq. 5.7, BKT)
//! F[R] = Rw + 2·St + Rq + Ry             (eq. 4.1)
//! ```
//!
//! At fixed `R` the first two equations are linear in `(Rq, Ry)`:
//!
//! ```text
//! Rq = So(1 + βa + a + 2βa + βa² − βa − a·... )    — solved exactly below:
//! Rq = So(1 + 2βa + a + βa²) / (1 − a − a²)
//! Ry = So(1 + βa + βa²)      / (1 − a − a²)
//! ```
//!
//! For `C² = 0` (`β = −1/2`) this reproduces the quartic of eq. 5.11 with the
//! same denominators (`R − So` and `R² − R·So − So²`), and its fixed point at
//! `W = St = 0` is `≈ 3.455·So` — the paper's 3.46 constant.

use crate::error::ModelError;
use crate::params::Machine;
use lopc_solver::{bisect, bracket_upward, Root};

/// The homogeneous all-to-all model (§5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllToAll {
    /// Architectural parameters.
    pub machine: Machine,
    /// Average work between requests, `W`.
    pub w: f64,
}

/// Solution of the all-to-all model: the response-time decomposition of
/// Figure 4-4 plus the derived queueing quantities of Table 4.1.
#[derive(Clone, Copy, Debug)]
pub struct AllToAllSolution {
    /// Total compute/request cycle response time `R*`.
    pub r: f64,
    /// Compute residence time `Rw` (work + handler interference).
    pub rw: f64,
    /// Request-handler response time `Rq` (service + queueing).
    pub rq: f64,
    /// Reply-handler response time `Ry`.
    pub ry: f64,
    /// Average request-handler population per node `Qq`.
    pub qq: f64,
    /// Average reply-handler population per node `Qy`.
    pub qy: f64,
    /// Utilisation by request handlers `Uq`.
    pub uq: f64,
    /// Utilisation by reply handlers `Uy`.
    pub uy: f64,
    /// Per-node throughput `1/R` (system throughput is `P/R`).
    pub x_per_node: f64,
    /// Total contention cost `C = R − (W + 2St + 2So)`.
    pub contention: f64,
    /// Bisection iterations used.
    pub iterations: usize,
}

impl AllToAllSolution {
    /// Contention suffered by the computation thread (`Rw − W`).
    pub fn contention_rw(&self, w: f64) -> f64 {
        self.rw - w
    }

    /// Queueing delay suffered by request handlers (`Rq − So`).
    pub fn contention_rq(&self, s_o: f64) -> f64 {
        self.rq - s_o
    }

    /// Queueing delay suffered by reply handlers (`Ry − So`).
    pub fn contention_ry(&self, s_o: f64) -> f64 {
        self.ry - s_o
    }
}

impl AllToAll {
    /// Model for `machine` with average inter-request work `w`.
    pub fn new(machine: Machine, w: f64) -> Self {
        AllToAll { machine, w }
    }

    /// Parameter validation.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.machine.validate()?;
        if !self.w.is_finite() || self.w < 0.0 {
            return Err(ModelError::InvalidParameter("w must be finite and >= 0"));
        }
        Ok(())
    }

    /// The contention-free cycle cost `W + 2·St + 2·So` — the lower bound of
    /// eq. 5.12 and the naive LogP prediction.
    pub fn contention_free(&self) -> f64 {
        self.machine.contention_free_response(self.w)
    }

    /// The upper bound of eq. 5.12: `W + 2·St + κ(C²)·So`, where `κ` is the
    /// normalised worst-case response (`κ(0) ≈ 3.46`, the paper's constant).
    pub fn upper_bound(&self) -> f64 {
        self.w + 2.0 * self.machine.s_l + upper_bound_constant(self.machine.c2) * self.machine.s_o
    }

    /// The §5.3 rule of thumb: contention costs about one extra handler, so
    /// `R ≈ W + 2·St + 3·So`.
    pub fn rule_of_thumb(&self) -> f64 {
        self.w + 2.0 * self.machine.s_l + 3.0 * self.machine.s_o
    }

    /// Evaluate the recursion `F[R]` (eq. 5.11 generalised to any `C²`).
    ///
    /// Returns `f64::INFINITY` when `R` is at or below the saturation point
    /// (`R² − R·So − So² ≤ 0` or `R ≤ So`), where the queueing equations have
    /// no physical solution — convenient for bracketing.
    pub fn eval_f(&self, r: f64) -> f64 {
        let so = self.machine.s_o;
        let st = self.machine.s_l;
        if so == 0.0 {
            return self.w + 2.0 * st;
        }
        if r <= so {
            return f64::INFINITY;
        }
        let a = so / r;
        let det = 1.0 - a - a * a; // > 0  <=>  r² − r·So − So² > 0
        if det <= 0.0 {
            return f64::INFINITY;
        }
        let beta = self.machine.beta();
        let rq = so * (1.0 + 2.0 * beta * a + a + beta * a * a) / det;
        let ry = so * (1.0 + beta * a + beta * a * a) / det;
        // BKT: Rw = (W + So·Qq)/(1 − Uq) with Qq = Rq/R, Uq = a.
        let rw = (self.w + so * rq / r) / (1.0 - a);
        rw + 2.0 * st + rq + ry
    }

    /// Solve `F[R] = R` for the unique fixed point and decompose it.
    pub fn solve(&self) -> Result<AllToAllSolution, ModelError> {
        self.validate()?;
        let so = self.machine.s_o;
        let st = self.machine.s_l;
        let lower = self.contention_free();

        // Degenerate cases first.
        if lower == 0.0 {
            return Err(ModelError::Degenerate(
                "w, s_l and s_o are all zero: cycle time is 0",
            ));
        }
        if so == 0.0 {
            // No handlers => no contention; R = W + 2·St exactly.
            let r = self.w + 2.0 * st;
            return Ok(AllToAllSolution {
                r,
                rw: self.w,
                rq: 0.0,
                ry: 0.0,
                qq: 0.0,
                qy: 0.0,
                uq: 0.0,
                uy: 0.0,
                x_per_node: 1.0 / r,
                contention: 0.0,
                iterations: 0,
            });
        }

        // g(R) = F(R) − R is strictly decreasing with g(lower) > 0; bracket
        // above and bisect. The generous initial step covers the whole
        // feasible contention range (κ ≤ 4·So for any C² ≤ ~8).
        let g = |r: f64| self.eval_f(r) - r;
        let hi = bracket_upward(g, lower, (4.0 + self.machine.c2) * so, 64)?;
        let root = bisect(g, lower, hi, 1e-10 * lower.max(1.0), 200)?;
        Ok(self.decompose_at(root))
    }

    /// Recompute the Figure 4-4 decomposition at a solved fixed point of
    /// `F[R] − R`. Shared by [`AllToAll::solve`] and the batched
    /// `scenario::solve_batch` path, so both produce the same numbers by
    /// construction.
    pub(crate) fn decompose_at(&self, root: Root) -> AllToAllSolution {
        let so = self.machine.s_o;
        let r = root.x;
        let a = so / r;
        let det = 1.0 - a - a * a;
        let beta = self.machine.beta();
        let rq = so * (1.0 + 2.0 * beta * a + a + beta * a * a) / det;
        let ry = so * (1.0 + beta * a + beta * a * a) / det;
        let rw = (self.w + so * rq / r) / (1.0 - a);
        AllToAllSolution {
            r,
            rw,
            rq,
            ry,
            qq: rq / r,
            qy: ry / r,
            uq: a,
            uy: a,
            x_per_node: 1.0 / r,
            contention: r - self.contention_free(),
            iterations: root.iterations,
        }
    }

    /// Total application runtime for `n` requests per node (`n·R*`).
    pub fn total_runtime(&self, n: u64) -> Result<f64, ModelError> {
        Ok(n as f64 * self.solve()?.r)
    }
}

/// The worst-case normalised response `κ(C²)`: the fixed point of the
/// recursion with `W = St = 0` and `So = 1`, i.e. the constant in the upper
/// bound `R* < W + 2·St + κ·So` (eq. 5.12). `κ(0) ≈ 3.455` — the thesis
/// rounds it to 3.46; `κ(1) ≈ 3.93`.
pub fn upper_bound_constant(c2: f64) -> f64 {
    let m = Machine::new(2, 0.0, 1.0).with_c2(c2);
    let model = AllToAll::new(m, 0.0);
    model
        .solve()
        .map(|s| s.r)
        .expect("normalised model always solvable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig52_machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    /// The paper's headline constant: κ(0) rounds to 3.46.
    #[test]
    fn kappa_zero_is_the_papers_346() {
        let k = upper_bound_constant(0.0);
        assert!(
            (3.40..=3.46).contains(&k),
            "κ(0) = {k} should round to the paper's 3.46"
        );
        // 3.46 is a strict upper bound: F[3.46] < 3.46 (checked in §5.3).
        let m = Machine::new(2, 0.0, 1.0).with_c2(0.0);
        let model = AllToAll::new(m, 0.0);
        assert!(model.eval_f(3.46) < 3.46);
    }

    /// κ grows with variability (≈6 % from C²=0 to C²=1 per Figure 5-1).
    #[test]
    fn kappa_monotone_in_c2() {
        let k0 = upper_bound_constant(0.0);
        let k1 = upper_bound_constant(1.0);
        let k2 = upper_bound_constant(2.0);
        assert!(k0 < k1 && k1 < k2, "κ: {k0}, {k1}, {k2}");
        assert!((3.8..=4.1).contains(&k1), "κ(1) = {k1}");
    }

    /// eq. 5.12: the fixed point lies strictly inside the bounds across a
    /// wide W sweep.
    #[test]
    fn bounds_hold_across_w_sweep() {
        for &w in &[0.0, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0] {
            let model = AllToAll::new(fig52_machine(), w);
            let sol = model.solve().unwrap();
            assert!(
                sol.r > model.contention_free(),
                "W={w}: R={} <= lower bound {}",
                sol.r,
                model.contention_free()
            );
            assert!(
                sol.r <= model.upper_bound() + 1e-6,
                "W={w}: R={} > upper bound {}",
                sol.r,
                model.upper_bound()
            );
        }
    }

    /// The fixed point satisfies F[R*] = R*.
    #[test]
    fn solution_is_a_fixed_point() {
        let model = AllToAll::new(fig52_machine(), 512.0);
        let sol = model.solve().unwrap();
        assert!((model.eval_f(sol.r) - sol.r).abs() < 1e-6);
        // And the decomposition is internally consistent.
        let recomposed = sol.rw + 2.0 * 25.0 + sol.rq + sol.ry;
        assert!((recomposed - sol.r).abs() < 1e-6);
    }

    /// F is strictly decreasing above the contention-free point.
    #[test]
    fn f_is_decreasing() {
        let model = AllToAll::new(fig52_machine(), 100.0);
        let lo = model.contention_free();
        let mut prev = model.eval_f(lo + 1.0);
        for i in 1..60 {
            let r = lo + 1.0 + i as f64 * 10.0;
            let cur = model.eval_f(r);
            assert!(cur < prev, "F must decrease: F({r}) = {cur} >= {prev}");
            prev = cur;
        }
    }

    /// As W → ∞ the relative contention vanishes but the absolute contention
    /// approaches one handler time from above... (rule of thumb, §5.3).
    #[test]
    fn rule_of_thumb_accuracy() {
        for &w in &[200.0, 1000.0, 4000.0] {
            let model = AllToAll::new(fig52_machine(), w);
            let sol = model.solve().unwrap();
            let rot = model.rule_of_thumb();
            // Rule of thumb within ~half a handler of the exact solution.
            assert!(
                (sol.r - rot).abs() < 0.5 * 200.0,
                "W={w}: R={} vs rule of thumb {rot}",
                sol.r
            );
        }
    }

    /// R is monotone increasing in W, So and St.
    #[test]
    fn monotonicity() {
        let base = AllToAll::new(fig52_machine(), 300.0).solve().unwrap().r;
        let more_w = AllToAll::new(fig52_machine(), 400.0).solve().unwrap().r;
        let more_so = AllToAll::new(Machine::new(32, 25.0, 250.0).with_c2(0.0), 300.0)
            .solve()
            .unwrap()
            .r;
        let more_st = AllToAll::new(Machine::new(32, 50.0, 200.0).with_c2(0.0), 300.0)
            .solve()
            .unwrap()
            .r;
        assert!(more_w > base);
        assert!(more_so > base);
        assert!(more_st > base);
    }

    /// Contention increases with C² (Figure 5-1).
    #[test]
    fn contention_increases_with_c2() {
        let mut prev = 0.0;
        for i in 0..=8 {
            let c2 = i as f64 * 0.25;
            let m = Machine::new(32, 25.0, 512.0).with_c2(c2);
            let sol = AllToAll::new(m, 1000.0).solve().unwrap();
            assert!(
                sol.contention > prev,
                "contention must grow with C²: {} at C²={c2}",
                sol.contention
            );
            prev = sol.contention;
        }
    }

    /// Zero-handler machine degenerates to pure wire + work.
    #[test]
    fn zero_handler_cost() {
        let m = Machine::new(8, 25.0, 0.0);
        let sol = AllToAll::new(m, 100.0).solve().unwrap();
        assert_eq!(sol.r, 150.0);
        assert_eq!(sol.contention, 0.0);
    }

    /// Fully degenerate model is an error.
    #[test]
    fn fully_degenerate_rejected() {
        let m = Machine::new(8, 0.0, 0.0);
        assert!(matches!(
            AllToAll::new(m, 0.0).solve(),
            Err(ModelError::Degenerate(_))
        ));
    }

    /// W = 0 is the worst case: utilisation near saturation but finite R.
    #[test]
    fn w_zero_solves() {
        let model = AllToAll::new(fig52_machine(), 0.0);
        let sol = model.solve().unwrap();
        assert!(sol.r > model.contention_free());
        assert!(sol.uq < 1.0);
        // Queue of about one handler throughout the system (§5.3 intuition).
        assert!(sol.qq > 0.3 && sol.qq < 1.5, "Qq = {}", sol.qq);
    }

    /// Invalid parameters rejected.
    #[test]
    fn validation() {
        assert!(AllToAll::new(Machine::new(1, 0.0, 1.0), 1.0)
            .solve()
            .is_err());
        assert!(AllToAll::new(fig52_machine(), -1.0).solve().is_err());
        assert!(AllToAll::new(fig52_machine(), f64::NAN).solve().is_err());
    }

    /// Solution accessors decompose contention by component.
    #[test]
    fn contention_component_accessors() {
        let model = AllToAll::new(fig52_machine(), 100.0);
        let sol = model.solve().unwrap();
        let total = sol.contention_rw(100.0) + sol.contention_rq(200.0) + sol.contention_ry(200.0);
        assert!((total - sol.contention).abs() < 1e-6);
        assert!(sol.contention_rw(100.0) >= 0.0);
        assert!(sol.contention_rq(200.0) >= 0.0);
        assert!(sol.contention_ry(200.0) >= 0.0);
    }
}
