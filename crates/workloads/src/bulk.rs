//! Bulk-synchronous fan-out workload: the §7 "non-blocking requests"
//! extension, end to end.
//!
//! Each thread computes `W`, fires `k` requests at uniformly random other
//! nodes, and blocks until all `k` replies have been handled. Shared-memory
//! programs that prefetch, multi-word remote reads, and bulk `put`s all look
//! like this. The matching analytical model is
//! [`lopc_core::ForkJoin`] — an explicit approximation whose accuracy the
//! tests and the `pipelining` bench measure.

use crate::Window;
use lopc_core::{ForkJoin, Machine};
use lopc_dist::ServiceTime;
use lopc_sim::{DestChooser, SimConfig, ThreadSpec};

/// Fork-join fan-out workload.
#[derive(Clone, Debug)]
pub struct BulkSync {
    /// Architectural parameters.
    pub machine: Machine,
    /// Mean work between request batches.
    pub w: f64,
    /// Requests per cycle.
    pub fanout: u32,
    /// Measurement window.
    pub window: Window,
}

impl BulkSync {
    /// Fan-out workload with constant work.
    pub fn new(machine: Machine, w: f64, fanout: u32) -> Self {
        BulkSync {
            machine,
            w,
            fanout,
            window: Window::default(),
        }
    }

    /// Use a custom measurement window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The fork-join model instance.
    pub fn model(&self) -> ForkJoin {
        ForkJoin::new(self.machine, self.w, self.fanout)
    }

    /// Simulator configuration with per-cycle fan-out.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let handler = ServiceTime::with_cv2(self.machine.s_o, self.machine.c2);
        let nominal = self.model().contention_free().max(1.0);
        SimConfig {
            p: self.machine.p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads: vec![
                ThreadSpec {
                    work: Some(ServiceTime::constant(self.w)),
                    dest: DestChooser::UniformOther,
                    hops: 1,
                    fanout: self.fanout,
                };
                self.machine.p
            ],
            protocol_processor: false,
            latency_dist: None,
            stop: self.window.to_stop(nominal),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_sim::run;

    fn setup(fanout: u32, w: f64) -> BulkSync {
        BulkSync::new(Machine::new(32, 25.0, 200.0).with_c2(0.0), w, fanout)
            .with_window(Window::quick())
    }

    /// fanout = 1 in the simulator matches the plain blocking workload.
    #[test]
    fn fanout_one_is_blocking() {
        let bulk = setup(1, 800.0);
        let plain = crate::AllToAllWorkload::new(bulk.machine, 800.0).with_window(Window::quick());
        let a = run(&bulk.sim_config(5)).unwrap().aggregate.mean_r;
        let b = run(&plain.sim_config(5)).unwrap().aggregate.mean_r;
        assert!((a - b).abs() / b < 0.03, "bulk {a} vs plain {b}");
    }

    /// The fork-join model tracks the simulator for moderate fan-out.
    #[test]
    fn model_tracks_sim_for_moderate_fanout() {
        for (k, tol) in [(1u32, 0.08), (2, 0.10), (4, 0.12)] {
            let wl = setup(k, 2000.0);
            let sim = run(&wl.sim_config(61)).unwrap().aggregate.mean_r;
            let model = wl.model().solve().unwrap().r;
            let err = (model - sim).abs() / sim;
            assert!(
                err < tol,
                "k={k}: model {model:.0} vs sim {sim:.0} ({:.1}%)",
                err * 100.0
            );
        }
    }

    /// Overlap wins in the simulator too: k requests per cycle cost far
    /// less than k blocking cycles.
    #[test]
    fn sim_confirms_overlap_speedup() {
        let k = 4u32;
        let w = 1000.0;
        let bulk = setup(k, w);
        let serial =
            crate::AllToAllWorkload::new(bulk.machine, w / k as f64).with_window(Window::quick());
        let r_bulk = run(&bulk.sim_config(7)).unwrap().aggregate.mean_r;
        let r_serial = run(&serial.sim_config(7)).unwrap().aggregate.mean_r * k as f64;
        assert!(
            r_bulk < 0.85 * r_serial,
            "fork-join {r_bulk:.0} vs serialised {r_serial:.0}"
        );
    }

    /// Request rate per node scales with k (Little's law on the sim side).
    #[test]
    fn request_rate_scales_with_fanout() {
        let r1 = run(&setup(1, 2000.0).sim_config(9)).unwrap();
        let r4 = run(&setup(4, 2000.0).sim_config(9)).unwrap();
        let served1: u64 = r1.nodes.iter().map(|n| n.requests_served).sum();
        let served4: u64 = r4.nodes.iter().map(|n| n.requests_served).sum();
        let rate1 = served1 as f64 / r1.window;
        let rate4 = served4 as f64 / r4.window;
        assert!(
            rate4 > 2.0 * rate1,
            "request rate should grow with fan-out: {rate1} vs {rate4}"
        );
    }
}
