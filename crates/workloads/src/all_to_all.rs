//! Homogeneous all-to-all workload (§5).

use crate::Window;
use lopc_core::{AllToAll, GeneralModel, Machine};
use lopc_dist::ServiceTime;
use lopc_sim::{DestChooser, SimConfig, ThreadSpec};

/// All-to-all pattern: every node alternates `W` work with a blocking
/// request to a uniformly random other node.
#[derive(Clone, Debug)]
pub struct AllToAllWorkload {
    /// Architectural parameters (`P`, `St`, `So`, `C²`).
    pub machine: Machine,
    /// Mean work between requests.
    pub w: f64,
    /// Distribution of the compute time (the model only uses its mean; §5.2
    /// notes compute variability does not matter because threads never queue
    /// against each other).
    pub work_dist: ServiceTime,
    /// Measurement window.
    pub window: Window,
}

impl AllToAllWorkload {
    /// Workload with constant compute time `w`.
    pub fn new(machine: Machine, w: f64) -> Self {
        AllToAllWorkload {
            machine,
            w,
            work_dist: ServiceTime::constant(w),
            window: Window::default(),
        }
    }

    /// Use a different compute-time distribution with the same mean.
    pub fn with_work_dist(mut self, dist: ServiceTime) -> Self {
        self.w = lopc_dist::Distribution::mean(&dist);
        self.work_dist = dist;
        self
    }

    /// Use a custom measurement window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The §5 closed-form model instance.
    pub fn model(&self) -> AllToAll {
        AllToAll::new(self.machine, self.w)
    }

    /// The equivalent Appendix A general-model instance.
    pub fn general_model(&self) -> GeneralModel {
        GeneralModel::homogeneous_all_to_all(self.machine, self.w)
    }

    /// Handler service-time distribution implied by `(So, C²)`.
    pub fn handler_dist(&self) -> ServiceTime {
        ServiceTime::with_cv2(self.machine.s_o, self.machine.c2)
    }

    /// The simulator configuration measuring the same system.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let handler = self.handler_dist();
        let nominal = self.machine.contention_free_response(self.w).max(1.0);
        SimConfig {
            p: self.machine.p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads: vec![
                ThreadSpec {
                    work: Some(self.work_dist.clone()),
                    dest: DestChooser::UniformOther,
                    hops: 1,
                    fanout: 1,
                };
                self.machine.p
            ],
            protocol_processor: false,
            latency_dist: None,
            stop: self.window.to_stop(nominal),
            seed,
        }
    }

    /// Same system with a protocol processor (§5.1 shared-memory variant).
    pub fn sim_config_protocol_processor(&self, seed: u64) -> SimConfig {
        let mut cfg = self.sim_config(seed);
        cfg.protocol_processor = true;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_dist::Distribution;
    use lopc_sim::run;

    fn fig52(w: f64) -> AllToAllWorkload {
        AllToAllWorkload::new(Machine::new(32, 25.0, 200.0).with_c2(0.0), w)
            .with_window(Window::quick())
    }

    #[test]
    fn model_and_sim_share_parameters() {
        let wl = fig52(512.0);
        let cfg = wl.sim_config(1);
        assert_eq!(cfg.p, 32);
        assert_eq!(cfg.net_latency, 25.0);
        assert!((cfg.request_handler.mean() - 200.0).abs() < 1e-9);
        assert_eq!(cfg.request_handler.cv2(), 0.0);
        assert!((wl.model().w - 512.0).abs() < 1e-12);
    }

    /// The headline validation: LoPC tracks the simulator within a few
    /// percent, while the contention-free LogP prediction is far below.
    #[test]
    fn model_tracks_simulator() {
        for &w in &[0.0, 200.0, 1000.0] {
            let wl = fig52(w);
            let sim = run(&wl.sim_config(7)).unwrap();
            let model = wl.model().solve().unwrap();
            let err = (model.r - sim.aggregate.mean_r).abs() / sim.aggregate.mean_r;
            assert!(
                err < 0.08,
                "W={w}: model {} vs sim {} ({:.1}%)",
                model.r,
                sim.aggregate.mean_r,
                err * 100.0
            );
        }
    }

    /// The simulated response time respects the eq. 5.12 bounds.
    #[test]
    fn sim_within_bounds() {
        let wl = fig52(128.0);
        let sim = run(&wl.sim_config(3)).unwrap();
        let model = wl.model();
        let r = sim.aggregate.mean_r;
        assert!(r > model.contention_free() * 0.995, "R = {r}");
        assert!(r < model.upper_bound() * 1.02, "R = {r}");
    }

    /// Exponential work with the same mean gives (nearly) the same response
    /// time — compute variability does not matter (§5.2).
    #[test]
    fn work_variability_is_irrelevant() {
        let base = fig52(600.0);
        let noisy = fig52(600.0).with_work_dist(ServiceTime::exponential(600.0));
        let r0 = run(&base.sim_config(11)).unwrap().aggregate.mean_r;
        let r1 = run(&noisy.sim_config(11)).unwrap().aggregate.mean_r;
        assert!(
            (r0 - r1).abs() / r0 < 0.04,
            "constant-work R {r0} vs exponential-work R {r1}"
        );
    }
}
