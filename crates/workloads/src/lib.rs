//! Workload characterisations that drive both the LoPC model and the
//! validation simulator.
//!
//! Each workload follows the §3 recipe: count the arithmetic and
//! communication operations of the algorithm, derive `(W, n)` and the routing
//! pattern, and hand the *same* parameterisation to
//!
//! * the analytical model (`lopc-core`), and
//! * the event-driven simulator (`lopc-sim`),
//!
//! so model-vs-measurement comparisons are apples-to-apples by construction.
//!
//! Provided workloads:
//!
//! * [`AllToAllWorkload`] — homogeneous all-to-all (§5, Figures 5-1/5-2/5-3);
//! * [`MatVec`] — the §3 worked example: cyclically-distributed matrix–vector
//!   multiply with `put`+ack communication;
//! * [`Workpile`] — client-server work distribution (§6, Figure 6-2);
//! * [`Forwarding`] — multi-hop request chains (Appendix A);
//! * [`Hotspot`] — non-homogeneous traffic concentrating on one node
//!   (exercises the general model's per-node asymmetry);
//! * [`BulkSync`] — fork-join fan-out of `k` overlapped requests per cycle
//!   (the §7 "non-blocking requests" extension).

pub mod all_to_all;
pub mod bulk;
pub mod forwarding;
pub mod hotspot;
pub mod matvec;
pub mod workpile;

pub use all_to_all::AllToAllWorkload;
pub use bulk::BulkSync;
pub use forwarding::Forwarding;
pub use hotspot::Hotspot;
pub use matvec::MatVec;
pub use workpile::Workpile;

/// Default steady-state measurement window used by the workload builders:
/// warm up for `warmup_cycles` mean cycle times, then measure for
/// `measure_cycles` more.
#[derive(Clone, Copy, Debug)]
pub struct Window {
    /// Warmup length, in units of the *contention-free* cycle time.
    pub warmup_cycles: f64,
    /// Measurement length, in the same units.
    pub measure_cycles: f64,
}

impl Default for Window {
    fn default() -> Self {
        // Long enough that Bard-level (~1 %) effects are resolvable.
        Window {
            warmup_cycles: 200.0,
            measure_cycles: 2_000.0,
        }
    }
}

impl Window {
    /// Shorter window for debug-build tests.
    pub fn quick() -> Self {
        Window {
            warmup_cycles: 100.0,
            measure_cycles: 600.0,
        }
    }

    /// Convert to absolute simulated times given a nominal cycle length.
    pub fn to_stop(self, nominal_cycle: f64) -> lopc_sim::StopCondition {
        lopc_sim::StopCondition::Horizon {
            warmup: self.warmup_cycles * nominal_cycle,
            end: (self.warmup_cycles + self.measure_cycles) * nominal_cycle,
        }
    }
}
