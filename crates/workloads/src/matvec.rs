//! The §3 worked example: matrix–vector multiply with a cyclically
//! distributed matrix.
//!
//! An `N × N` matrix `A` is distributed so row `i` lives on processor
//! `i mod P`; the input vector `x` is replicated. Each processor computes
//! `N/P` dot products (`m = (N/P)·N` multiply-adds) and `put`s each result to
//! the other `P − 1` processors (`n = (N/P)(P−1)` messages), blocking on the
//! acknowledgement. Hence
//!
//! ```text
//! W = m·t_madd / n = t_madd · N / (P − 1)
//! ```
//!
//! The destinations cycle deterministically over the other nodes, which is
//! *homogeneous* in the LoPC sense, so the model instance is exactly the §5
//! all-to-all model and the predicted total runtime is `n·R`.
//!
//! # Synchronisation matters (the Brewer–Kuszmaul effect)
//!
//! With perfectly constant work and handler times, the staggered round-robin
//! schedule is a sequence of *permutations*: every node receives exactly one
//! message per round and the run is contention-free — the carefully
//! interleaved CM-5 patterns of Brewer and Kuszmaul that the thesis's
//! introduction discusses. Those authors measured that real interleaves
//! "quickly became virtually random, largely due to small variances"; real
//! machines cannot hold the lockstep. The [`MatVec::jitter`] parameter
//! reproduces both regimes: `0.0` keeps the lockstep (simulated makespan ≈
//! the contention-free LogP bound), while any realistic jitter (a few
//! percent of `W`) lets the pattern decay into the random-arrival regime
//! that LoPC models, and the makespan approaches `n·R`.

use lopc_core::{Algorithm, AllToAll, Machine};
use lopc_dist::{ServiceTime, UniformRange};
use lopc_sim::{DestChooser, SimConfig, StopCondition, ThreadSpec};

/// Matrix–vector multiply characterisation.
#[derive(Clone, Copy, Debug)]
pub struct MatVec {
    /// Matrix dimension `N` (a multiple of `machine.p` for the clean cyclic
    /// distribution of §3).
    pub n_dim: usize,
    /// Architectural parameters.
    pub machine: Machine,
    /// Cost of one multiply-add, in cycles.
    pub t_madd: f64,
    /// Fractional half-width of uniform per-chunk work jitter. `0.0` keeps
    /// the deterministic lockstep (contention-free permutations); realistic
    /// values (0.01–0.2) desynchronise the pattern into the regime LoPC
    /// models.
    pub jitter: f64,
}

impl MatVec {
    /// Characterise `A·x` for an `N × N` matrix on `machine`, with 10 % work
    /// jitter (the realistic desynchronised regime).
    pub fn new(n_dim: usize, machine: Machine, t_madd: f64) -> Self {
        MatVec {
            n_dim,
            machine,
            t_madd,
            jitter: 0.10,
        }
    }

    /// Override the jitter fraction (see the type-level docs).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Local multiply-add operations per processor, `m = (N/P)·N`.
    pub fn m_ops(&self) -> u64 {
        (self.n_dim / self.machine.p) as u64 * self.n_dim as u64
    }

    /// Messages per processor, `n = (N/P)(P−1)`.
    pub fn n_msgs(&self) -> u64 {
        (self.n_dim / self.machine.p) as u64 * (self.machine.p - 1) as u64
    }

    /// The LoPC algorithmic characterisation `(W, n)`.
    pub fn algorithm(&self) -> Algorithm {
        Algorithm::from_op_counts(self.m_ops(), self.t_madd, self.n_msgs())
    }

    /// Average work between requests, `W = t_madd·N/(P−1)`.
    pub fn w(&self) -> f64 {
        self.algorithm().w
    }

    /// The §5 model instance for this pattern.
    pub fn model(&self) -> AllToAll {
        AllToAll::new(self.machine, self.w())
    }

    /// LoPC-predicted total runtime `n·R`.
    pub fn predicted_runtime(&self) -> Result<f64, lopc_core::ModelError> {
        self.model().total_runtime(self.n_msgs())
    }

    /// Contention-free (naive LogP) total runtime `n·(W + 2St + 2So)` —
    /// also the makespan of the perfectly synchronised permutation schedule.
    pub fn logp_runtime(&self) -> f64 {
        self.n_msgs() as f64 * self.machine.contention_free_response(self.w())
    }

    /// Per-chunk work distribution implied by the jitter setting.
    pub fn work_dist(&self) -> ServiceTime {
        let w = self.w();
        if self.jitter == 0.0 {
            ServiceTime::constant(w)
        } else {
            ServiceTime::Uniform(UniformRange::centered(w, self.jitter * w))
        }
    }

    /// Simulator configuration running the *whole* multiply: every node
    /// performs exactly `n` put/ack cycles with deterministic round-robin
    /// destinations; the report's `makespan` is the measured total runtime.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let p = self.machine.p;
        let handler = ServiceTime::with_cv2(self.machine.s_o, self.machine.c2);
        let work = self.work_dist();
        let threads = (0..p)
            .map(|me| {
                // Put y_i to each other node in turn, starting after me.
                let order: Vec<usize> = (1..p).map(|d| (me + d) % p).collect();
                ThreadSpec {
                    work: Some(work.clone()),
                    dest: DestChooser::RoundRobin(order),
                    hops: 1,
                    fanout: 1,
                }
            })
            .collect();
        SimConfig {
            p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n: self.n_msgs() },
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_sim::run;

    fn setup() -> MatVec {
        MatVec::new(512, Machine::new(16, 25.0, 200.0).with_c2(0.0), 4.0)
    }

    #[test]
    fn section3_counts() {
        let mv = setup();
        assert_eq!(mv.m_ops(), 32 * 512);
        assert_eq!(mv.n_msgs(), 32 * 15);
        // W = t_madd * N / (P-1).
        assert!((mv.w() - 4.0 * 512.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_runtime_is_n_times_r() {
        let mv = setup();
        let r = mv.model().solve().unwrap().r;
        let rt = mv.predicted_runtime().unwrap();
        assert!((rt - mv.n_msgs() as f64 * r).abs() < 1e-6);
        assert!(rt > mv.logp_runtime(), "LoPC adds contention to LogP");
    }

    /// The Brewer–Kuszmaul lockstep: zero jitter keeps the staggered
    /// round-robin a sequence of contention-free permutations, so the
    /// makespan equals the naive LogP bound exactly.
    #[test]
    fn lockstep_permutation_is_contention_free() {
        let mv = MatVec::new(256, Machine::new(8, 25.0, 200.0).with_c2(0.0), 4.0).with_jitter(0.0);
        let report = run(&mv.sim_config(5)).unwrap();
        let logp = mv.logp_runtime();
        assert!(
            (report.makespan - logp).abs() / logp < 1e-9,
            "lockstep makespan {} != LogP bound {logp}",
            report.makespan
        );
    }

    /// A few percent of work jitter destroys the lockstep and the makespan
    /// climbs to the LoPC prediction n·R (the realistic regime).
    #[test]
    fn jittered_makespan_matches_prediction() {
        let mv = MatVec::new(256, Machine::new(8, 25.0, 200.0).with_c2(0.0), 4.0).with_jitter(0.10);
        let report = run(&mv.sim_config(5)).unwrap();
        let predicted = mv.predicted_runtime().unwrap();
        let err = (predicted - report.makespan).abs() / report.makespan;
        assert!(
            err < 0.10,
            "predicted {predicted} vs makespan {} ({:.1}%)",
            report.makespan,
            err * 100.0
        );
        assert!(
            mv.logp_runtime() < report.makespan,
            "naive LogP must under-predict once desynchronised"
        );
    }

    /// Jittered round-robin and uniform-random destinations give similar
    /// response times (homogeneity is what matters once desynchronised).
    #[test]
    fn desynchronised_round_robin_is_homogeneous() {
        let mv = MatVec::new(256, Machine::new(8, 25.0, 200.0).with_c2(0.0), 4.0).with_jitter(0.10);
        let mut cfg = mv.sim_config(9);
        let rr = run(&cfg).unwrap().aggregate.mean_r;
        for t in &mut cfg.threads {
            t.dest = DestChooser::UniformOther;
        }
        let uni = run(&cfg).unwrap().aggregate.mean_r;
        assert!(
            (rr - uni).abs() / uni < 0.06,
            "round-robin {rr} vs uniform {uni}"
        );
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn invalid_jitter_rejected() {
        setup().with_jitter(1.5);
    }
}
