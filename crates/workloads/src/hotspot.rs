//! Hotspot workload: a non-homogeneous pattern where a fraction of all
//! requests target one node.
//!
//! This is the simplest pattern the §5 closed form cannot describe: the
//! hotspot node saturates first, its requests queue deeper, and its own
//! thread suffers the most interference. It exercises the per-node
//! asymmetry of the Appendix A general model.

use crate::Window;
use lopc_core::{GeneralModel, Machine};
use lopc_dist::ServiceTime;
use lopc_sim::{DestChooser, SimConfig, ThreadSpec};

/// Hotspot traffic: each request goes to node 0 with probability
/// `hot_fraction`, otherwise to a uniformly random other node.
#[derive(Clone, Debug)]
pub struct Hotspot {
    /// Architectural parameters.
    pub machine: Machine,
    /// Mean work between requests.
    pub w: f64,
    /// Probability a request targets node 0.
    pub hot_fraction: f64,
    /// Measurement window.
    pub window: Window,
}

impl Hotspot {
    /// Hotspot workload; `hot_fraction ∈ [0, 1]`.
    pub fn new(machine: Machine, w: f64, hot_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be a probability"
        );
        Hotspot {
            machine,
            w,
            hot_fraction,
            window: Window::default(),
        }
    }

    /// Use a custom measurement window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Visit fractions for the thread on node `c`.
    fn row(&self, c: usize) -> Vec<f64> {
        let p = self.machine.p;
        let mut v = vec![0.0; p];
        if c == 0 {
            // Node 0 cannot send to itself: its traffic is uniform over the
            // others.
            let f = 1.0 / (p - 1) as f64;
            for (k, slot) in v.iter_mut().enumerate().skip(1) {
                let _ = k;
                *slot = f;
            }
        } else {
            v[0] = self.hot_fraction;
            let rest = (1.0 - self.hot_fraction) / (p - 2) as f64;
            for (k, slot) in v.iter_mut().enumerate() {
                if k != 0 && k != c {
                    *slot = rest;
                }
            }
        }
        v
    }

    /// The general-model instance.
    pub fn model(&self) -> GeneralModel {
        let p = self.machine.p;
        GeneralModel {
            machine: self.machine,
            w: vec![Some(self.w); p],
            v: (0..p).map(|c| self.row(c)).collect(),
            protocol_processor: false,
        }
    }

    /// Simulator configuration with weighted destinations.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let p = self.machine.p;
        let handler = ServiceTime::with_cv2(self.machine.s_o, self.machine.c2);
        let threads = (0..p)
            .map(|c| {
                let weights: Vec<(usize, f64)> = self
                    .row(c)
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, w)| w > 0.0)
                    .collect();
                ThreadSpec {
                    work: Some(ServiceTime::constant(self.w)),
                    dest: DestChooser::Weighted(weights),
                    hops: 1,
                    fanout: 1,
                }
            })
            .collect();
        let nominal = self.machine.contention_free_response(self.w).max(1.0);
        SimConfig {
            p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: self.window.to_stop(nominal),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_sim::run;

    fn setup(hot: f64) -> Hotspot {
        Hotspot::new(Machine::new(16, 25.0, 150.0).with_c2(0.0), 1500.0, hot)
            .with_window(Window::quick())
    }

    #[test]
    fn rows_are_stochastic() {
        let wl = setup(0.4);
        for c in 0..16 {
            let row = wl.row(c);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(row[c], 0.0);
        }
        assert!((wl.row(3)[0] - 0.4).abs() < 1e-12);
    }

    /// Model predicts the hotspot's inflated utilisation; the simulator
    /// agrees.
    #[test]
    fn model_tracks_sim_hotspot() {
        let wl = setup(0.5);
        let sol = wl.model().solve().unwrap();
        let sim = run(&wl.sim_config(41)).unwrap();
        // Hot node sees several times the request utilisation of a cold one.
        assert!(sol.uq[0] > 3.0 * sol.uq[5]);
        assert!(sim.nodes[0].uq > 3.0 * sim.nodes[5].uq);
        // Mean response time across threads agrees within tolerance.
        let r_sim = sim.aggregate.mean_r;
        let r_model = sol.mean_r();
        let err = (r_model - r_sim).abs() / r_sim;
        assert!(
            err < 0.10,
            "model {} vs sim {} ({:.1}%)",
            r_model,
            r_sim,
            err * 100.0
        );
    }

    /// hot_fraction = 1/(P-1) reduces to the homogeneous pattern.
    #[test]
    fn uniform_fraction_is_homogeneous() {
        let p = 16usize;
        let wl = setup(1.0 / (p - 1) as f64);
        let sol = wl.model().solve().unwrap();
        let closed = lopc_core::AllToAll::new(wl.machine, wl.w).solve().unwrap();
        assert!(
            (sol.r[1] - closed.r).abs() / closed.r < 1e-3,
            "general {} vs closed {}",
            sol.r[1],
            closed.r
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_fraction_rejected() {
        setup(1.5);
    }
}
