//! Multi-hop forwarding workload (Appendix A: `Σ_k V[c][k] > 1`).
//!
//! Each request is served at `hops` nodes in turn (the handler at each hop
//! forwards to a uniformly random next node) before the final node replies
//! to the originator — the "multi-hop requests" the general model was built
//! to cover. Coherence protocols behave like this (requester → home →
//! owner → requester).

use crate::Window;
use lopc_core::{GeneralModel, Machine};
use lopc_dist::ServiceTime;
use lopc_sim::{DestChooser, SimConfig, ThreadSpec};

/// Forwarding-chain workload.
#[derive(Clone, Debug)]
pub struct Forwarding {
    /// Architectural parameters.
    pub machine: Machine,
    /// Mean work between requests.
    pub w: f64,
    /// Handler visits per request (`≥ 1`).
    pub hops: u32,
    /// Measurement window.
    pub window: Window,
}

impl Forwarding {
    /// Chain workload with constant work.
    pub fn new(machine: Machine, w: f64, hops: u32) -> Self {
        Forwarding {
            machine,
            w,
            hops,
            window: Window::default(),
        }
    }

    /// Use a custom measurement window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The general-model instance (every row of `V` sums to `hops`).
    pub fn model(&self) -> GeneralModel {
        GeneralModel::multi_hop(self.machine, self.w, self.hops)
    }

    /// Contention-free cycle cost: `W + (h+1)·St + h·So + So`.
    pub fn contention_free(&self) -> f64 {
        let h = self.hops as f64;
        self.w + (h + 1.0) * self.machine.s_l + (h + 1.0) * self.machine.s_o
    }

    /// Simulator configuration with `hops` handler visits per request.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let handler = ServiceTime::with_cv2(self.machine.s_o, self.machine.c2);
        let nominal = self.contention_free().max(1.0);
        SimConfig {
            p: self.machine.p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads: vec![
                ThreadSpec {
                    work: Some(ServiceTime::constant(self.w)),
                    dest: DestChooser::UniformOther,
                    hops: self.hops,
                    fanout: 1,
                };
                self.machine.p
            ],
            protocol_processor: false,
            latency_dist: None,
            stop: self.window.to_stop(nominal),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_sim::run;

    fn setup(hops: u32) -> Forwarding {
        Forwarding::new(Machine::new(16, 25.0, 150.0).with_c2(0.0), 800.0, hops)
            .with_window(Window::quick())
    }

    /// The general model tracks the simulator for 2- and 3-hop chains.
    #[test]
    fn model_tracks_sim_multihop() {
        for hops in [1u32, 2, 3] {
            let wl = setup(hops);
            let sim = run(&wl.sim_config(31)).unwrap();
            let model = wl.model().solve().unwrap();
            let err = (model.r[0] - sim.aggregate.mean_r).abs() / sim.aggregate.mean_r;
            assert!(
                err < 0.08,
                "hops={hops}: model {} vs sim {} ({:.1}%)",
                model.r[0],
                sim.aggregate.mean_r,
                err * 100.0
            );
        }
    }

    /// One hop reduces to the plain all-to-all pattern.
    #[test]
    fn single_hop_equals_all_to_all() {
        let wl = setup(1);
        let general = wl.model().solve().unwrap().r[0];
        let closed = lopc_core::AllToAll::new(wl.machine, wl.w)
            .solve()
            .unwrap()
            .r;
        assert!((general - closed).abs() / closed < 1e-6);
    }

    #[test]
    fn contention_free_floor_respected() {
        let wl = setup(3);
        let sim = run(&wl.sim_config(2)).unwrap();
        assert!(sim.aggregate.mean_r >= wl.contention_free() * 0.999);
    }
}
