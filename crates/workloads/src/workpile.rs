//! Client-server work-pile workload (§6, Figure 6-2).

use crate::Window;
use lopc_core::{ClientServer, GeneralModel, Machine};
use lopc_dist::ServiceTime;
use lopc_sim::{DestChooser, SimConfig, ThreadSpec};

/// Work-pile: `Ps` server nodes hand out chunks; `P − Ps` clients do `W`
/// work per chunk and request the next chunk from a random server.
#[derive(Clone, Debug)]
pub struct Workpile {
    /// Architectural parameters (`P` total nodes).
    pub machine: Machine,
    /// Mean work per chunk.
    pub w: f64,
    /// Server count (`1..=P−1`).
    pub ps: usize,
    /// Chunk-size distribution; work-pile chunks are "highly variable" (§6),
    /// so the default is exponential. Only the mean enters the model.
    pub chunk_dist: ServiceTime,
    /// Measurement window.
    pub window: Window,
}

impl Workpile {
    /// Work-pile with exponential chunk sizes of mean `w`.
    pub fn new(machine: Machine, w: f64, ps: usize) -> Self {
        Workpile {
            machine,
            w,
            ps,
            chunk_dist: ServiceTime::exponential(w),
            window: Window::default(),
        }
    }

    /// Override the chunk-size distribution (mean is re-derived from it).
    pub fn with_chunk_dist(mut self, dist: ServiceTime) -> Self {
        self.w = lopc_dist::Distribution::mean(&dist);
        self.chunk_dist = dist;
        self
    }

    /// Use a custom measurement window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The §6 model for this machine and chunk size (server count is chosen
    /// per query).
    pub fn model(&self) -> ClientServer {
        ClientServer::new(self.machine, self.w)
    }

    /// The equivalent Appendix A general-model instance at this `ps`.
    pub fn general_model(&self) -> GeneralModel {
        GeneralModel::client_server(self.machine, self.w, self.ps)
    }

    /// Simulator configuration: nodes `0..ps` are servers, the rest clients.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let p = self.machine.p;
        let handler = ServiceTime::with_cv2(self.machine.s_o, self.machine.c2);
        let servers: Vec<usize> = (0..self.ps).collect();
        let mut threads = vec![ThreadSpec::server(); p];
        for spec in threads.iter_mut().skip(self.ps) {
            *spec = ThreadSpec {
                work: Some(self.chunk_dist.clone()),
                dest: DestChooser::UniformAmong(servers.clone()),
                hops: 1,
                fanout: 1,
            };
        }
        let nominal = self.machine.contention_free_response(self.w).max(1.0);
        SimConfig {
            p,
            net_latency: self.machine.s_l,
            request_handler: handler.clone(),
            reply_handler: handler,
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: self.window.to_stop(nominal),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_sim::run;

    fn fig62(ps: usize) -> Workpile {
        Workpile::new(Machine::new(16, 50.0, 131.0).with_c2(0.0), 1000.0, ps)
            .with_window(Window::quick())
    }

    #[test]
    fn roles_are_assigned() {
        let cfg = fig62(4).sim_config(1);
        assert!(cfg.threads[..4].iter().all(|t| !t.is_active()));
        assert!(cfg.threads[4..].iter().all(|t| t.is_active()));
    }

    /// Model throughput tracks simulated throughput across the split, and
    /// the model is (slightly) conservative as the paper reports (≤3 %
    /// plus simulation noise).
    #[test]
    fn model_tracks_simulated_throughput() {
        for ps in [2usize, 5, 8] {
            let wl = fig62(ps);
            let sim = run(&wl.sim_config(13)).unwrap();
            let model = wl.model().throughput(ps).unwrap();
            let x_sim = sim.aggregate.throughput;
            let err = (model.x - x_sim) / x_sim;
            assert!(
                err.abs() < 0.10,
                "ps={ps}: model X={} vs sim X={x_sim} ({:+.1}%)",
                model.x,
                err * 100.0
            );
        }
    }

    /// The simulated optimum is near the eq. 6.8 prediction.
    #[test]
    fn simulated_optimum_near_closed_form() {
        let machine = Machine::new(16, 50.0, 131.0).with_c2(0.0);
        let model = ClientServer::new(machine, 1000.0);
        let predicted = model.optimal_servers().unwrap();
        let mut best = (0usize, 0.0f64);
        for ps in 1..machine.p {
            let wl = fig62(ps);
            let x = run(&wl.sim_config(29)).unwrap().aggregate.throughput;
            if x > best.1 {
                best = (ps, x);
            }
        }
        assert!(
            (best.0 as i64 - predicted as i64).abs() <= 1,
            "sim optimum {} vs closed form {predicted}",
            best.0
        );
    }

    /// Chunk-size variability does not shift throughput materially (only the
    /// mean enters the model).
    #[test]
    fn chunk_variability_is_second_order() {
        let exp = fig62(4);
        let cst = fig62(4).with_chunk_dist(ServiceTime::constant(1000.0));
        let x_exp = run(&exp.sim_config(17)).unwrap().aggregate.throughput;
        let x_cst = run(&cst.sim_config(17)).unwrap().aggregate.throughput;
        assert!(
            (x_exp - x_cst).abs() / x_cst < 0.05,
            "exponential {x_exp} vs constant {x_cst}"
        );
    }
}
