//! Acceptance for the cluster tier (DESIGN.md §15): N `lopc-serve` nodes
//! sharding the solution/interpolation caches by consistent hashing.
//!
//! Three contracts, end to end over real sockets:
//!
//! 1. **Topology**: every node derives the same ring from the same member
//!    set — clients and nodes agree on ownership without coordination.
//! 2. **Failure**: killing a node degrades capacity, never correctness —
//!    the routing client fails over to ring survivors and every answer
//!    stays bit-identical to the library (ownership is locality, not
//!    authority: every node can solve everything exactly).
//! 3. **Warmth travels**: a sweep warmed on node A is served on node B
//!    from shipped cells — B pays a spot-probe per imported cell, a small
//!    fraction of the cold solve bill — and every import passes B's local
//!    re-verification.

use std::collections::BTreeSet;
use std::net::TcpListener;

use lopc::prelude::*;
use lopc_serve::server::{start_on, ServerConfig, ServerHandle};
use lopc_serve::{predictions_identical, Client, ClusterClient};

/// Bind `n` ephemeral listeners first, then start a node on each with the
/// other `n-1` as peers — the only way every node can know the full member
/// list before any of them exists.
fn start_cluster(n: usize) -> Vec<ServerHandle> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            start_on(
                listener,
                ServerConfig {
                    workers: 2,
                    peers,
                    advertise: Some(addrs[i].clone()),
                    ..ServerConfig::default()
                },
            )
            .expect("start node")
        })
        .collect()
}

/// A scenario population spread across variants and parameters — enough
/// keys that a 3-node ring assigns every node some ownership with
/// overwhelming probability.
fn population() -> Vec<Scenario> {
    let m32 = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let m16 = Machine::new(16, 50.0, 131.0).with_c2(1.0);
    let mut scenarios = Vec::new();
    for i in 0..12 {
        let w = 200.0 + 150.0 * i as f64;
        scenarios.push(Scenario::AllToAll { machine: m32, w });
        scenarios.push(Scenario::SharedMemory {
            machine: m16,
            w: w + 37.0,
        });
        scenarios.push(Scenario::ForkJoin {
            machine: m32,
            w: w + 11.0,
            k: 1 + (i % 4) as u32,
        });
        scenarios.push(Scenario::ClientServer {
            machine: m16,
            w: w + 53.0,
            ps: Some(1 + i % 8),
        });
    }
    scenarios
}

#[test]
fn every_node_publishes_the_same_topology() {
    let nodes = start_cluster(3);
    let mut rings = Vec::new();
    for handle in &nodes {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let doc = client
            .request_json("GET", "/v1/cluster", b"")
            .expect("topology");
        let members: BTreeSet<String> = doc
            .get("nodes")
            .and_then(lopc_serve::Json::as_array)
            .expect("nodes array")
            .iter()
            .map(|n| n.as_str().expect("node addr").to_owned())
            .collect();
        assert_eq!(members.len(), 3, "every node must list all 3 members");
        assert!(
            members.contains(doc.get("self").and_then(lopc_serve::Json::as_str).unwrap()),
            "a node must be a member of its own ring"
        );
        rings.push(members);
    }
    assert!(
        rings.windows(2).all(|w| w[0] == w[1]),
        "all nodes must agree on the member set"
    );
    for handle in nodes {
        handle.shutdown();
    }
}

#[test]
fn killing_a_node_degrades_capacity_never_correctness() {
    let mut nodes = start_cluster(3);
    let scenarios = population();
    let library: Vec<Prediction> = scenarios
        .iter()
        .map(|s| lopc::model::scenario::solve(s).expect("library solve"))
        .collect();

    let client = ClusterClient::connect(nodes[0].addr()).expect("cluster connect");
    assert_eq!(client.members().len(), 3);

    // The population must actually be sharded, or the kill below tests
    // nothing.
    let owners: BTreeSet<String> = scenarios
        .iter()
        .filter_map(|s| client.owner_of(s).map(str::to_owned))
        .collect();
    assert!(
        owners.len() >= 2,
        "population routes to only {owners:?} — ring is not spreading keys"
    );

    // Healthy cluster: singles and one batch, all bit-identical.
    for (s, lib) in scenarios.iter().zip(&library) {
        let served = client.predict(s).expect("predict via router");
        assert!(
            predictions_identical(&served, lib),
            "{}: routed {served:?} != library {lib:?}",
            s.kind()
        );
    }
    let batch = client.predict_batch(&scenarios).expect("routed batch");
    assert_eq!(batch.len(), library.len());
    for (served, lib) in batch.iter().zip(&library) {
        assert!(predictions_identical(served, lib));
    }

    // Kill the node that owns the first scenario — a target guaranteed to
    // force rerouting, not a bystander.
    let victim_addr = client
        .owner_of(&scenarios[0])
        .expect("first scenario has an owner")
        .to_owned();
    let victim = nodes
        .iter()
        .position(|h| h.addr().to_string() == victim_addr)
        .expect("owner is one of the started nodes");
    nodes.remove(victim).shutdown();

    // Survivors must serve the *full* keyspace, still bit-identical: zero
    // wrong answers, in singles and in the re-partitioned batch.
    for (s, lib) in scenarios.iter().zip(&library) {
        let served = client
            .predict(s)
            .expect("failover predict must reach a survivor");
        assert!(
            predictions_identical(&served, lib),
            "{} after node kill: routed {served:?} != library {lib:?}",
            s.kind()
        );
    }
    let batch = client
        .predict_batch(&scenarios)
        .expect("failover batch must be re-partitioned onto survivors");
    for (served, lib) in batch.iter().zip(&library) {
        assert!(
            predictions_identical(served, lib),
            "batch after node kill drifted from the library"
        );
    }

    for handle in nodes {
        handle.shutdown();
    }
}

/// Kill an owner *while batches are in flight*: a background thread takes
/// a node down mid-hammer, so some wave catches the exact moment its
/// sub-batch's target dies. Every batch must still come back complete and
/// bit-identical to the library — the failed sub-batch re-partitions onto
/// ring survivors, no lane is dropped, none is answered twice (the router
/// turns a double answer into a hard protocol error, so a plain `Ok` here
/// really is the single-assignment proof).
#[test]
fn killing_an_owner_mid_wave_loses_no_batch() {
    let mut nodes = start_cluster(3);
    let scenarios = population();
    let library: Vec<Prediction> = scenarios
        .iter()
        .map(|s| lopc::model::scenario::solve(s).expect("library solve"))
        .collect();

    let client = ClusterClient::connect(nodes[0].addr()).expect("cluster connect");
    client.predict_batch(&scenarios).expect("warm-up batch");

    // The victim owns the first scenario, so every wave keeps targeting
    // it until the moment it dies (the seed has no special role after
    // topology discovery — any owner works).
    let victim_addr = client
        .owner_of(&scenarios[0])
        .expect("first scenario has an owner")
        .to_owned();
    let victim = nodes
        .iter()
        .position(|h| h.addr().to_string() == victim_addr)
        .expect("owner is one of the started nodes");
    let victim = nodes.remove(victim);

    let (tx, rx) = std::sync::mpsc::channel();
    let killer = std::thread::spawn(move || {
        // Let a few waves land against the full ring first.
        std::thread::sleep(std::time::Duration::from_millis(30));
        victim.shutdown();
        let _ = tx.send(());
    });

    let mut saw_kill = false;
    for round in 0..200 {
        let batch = client
            .predict_batch(&scenarios)
            .unwrap_or_else(|e| panic!("batch round {round} failed mid-kill: {e}"));
        assert_eq!(batch.len(), library.len(), "round {round} lost lanes");
        for (served, lib) in batch.iter().zip(&library) {
            assert!(
                predictions_identical(served, lib),
                "round {round}: mid-kill batch drifted from the library"
            );
        }
        if !saw_kill && rx.try_recv().is_ok() {
            saw_kill = true;
        }
        // Keep hammering a little past the kill so post-kill waves (dead
        // pooled connection, re-partition path) are exercised too.
        if saw_kill && round >= 50 {
            break;
        }
    }
    killer.join().expect("killer thread");
    assert!(saw_kill, "the victim was never observed to die mid-hammer");

    for handle in nodes {
        handle.shutdown();
    }
}

/// With every member dead, routed calls must surface a transport error —
/// promptly, with no panic and no partial result. (The router's forced
/// re-probe of ring owners means a later call would heal if a node came
/// back; here nothing does, so every round must keep erroring.)
#[test]
fn all_owners_down_surfaces_a_transport_error() {
    let nodes = start_cluster(3);
    let scenarios = population();
    let client = ClusterClient::connect(nodes[0].addr()).expect("cluster connect");
    client.predict_batch(&scenarios).expect("warm-up batch");

    for handle in nodes {
        handle.shutdown();
    }

    for round in 0..3 {
        let err = client
            .predict_batch(&scenarios)
            .expect_err("a fully-dead cluster must fail the batch");
        assert!(
            matches!(err, lopc_serve::ClientError::Io(_)),
            "round {round}: expected a transport error, got: {err}"
        );
        let err = client
            .predict(&scenarios[0])
            .expect_err("a fully-dead cluster must fail singles too");
        assert!(
            matches!(err, lopc_serve::ClientError::Io(_)),
            "round {round}: expected a transport error, got: {err}"
        );
    }
}

#[test]
fn a_sweep_warmed_on_one_node_serves_warm_from_the_other() {
    const TOL: f64 = 5e-2;
    const POINTS: usize = 1000;
    // The acceptance budget: the warm node may spend at most 15% of the
    // one-solve-per-point cold bill.
    const BUDGET: u64 = (POINTS as u64) * 15 / 100;

    let nodes = start_cluster(2);
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let sweep: Vec<Scenario> = (0..POINTS)
        .map(|i| Scenario::AllToAll {
            machine,
            w: 500.0 + 1000.0 * i as f64 / (POINTS - 1) as f64,
        })
        .collect();
    let library: Vec<Prediction> = sweep
        .iter()
        .map(|s| lopc::model::scenario::solve(s).expect("library solve"))
        .collect();

    // Warm node A through its public endpoint.
    let mut a = Client::connect(nodes[0].addr()).expect("connect A");
    for (s, lib) in sweep.iter().zip(&library) {
        let p = a.predict_within(s, TOL).expect("warm predict on A");
        let rel = ((p.r - lib.r) / lib.r).abs();
        assert!(rel <= TOL, "A answered outside tolerance: rel={rel:.3e}");
    }
    let a_interp = nodes[0].service().interp();
    assert!(
        a_interp.cells_built() > 0,
        "the sweep must build cells on A"
    );
    let a_solves = nodes[0].service().cache().misses();

    // Node B serves the same sweep from A's shipped cells: pulled on miss
    // (and possibly pushed by A's sweep prefetcher), each import paying
    // one local spot-probe solve instead of a full cell build.
    let mut b = Client::connect(nodes[1].addr()).expect("connect B");
    for (s, lib) in sweep.iter().zip(&library) {
        let p = b.predict_within(s, TOL).expect("warm predict on B");
        let rel = ((p.r - lib.r) / lib.r).abs();
        assert!(rel <= TOL, "B answered outside tolerance: rel={rel:.3e}");
    }

    let b_interp = nodes[1].service().interp();
    assert!(
        b_interp.cells_received() >= 1,
        "B must have admitted at least one shipped cell"
    );
    assert_eq!(
        b_interp.cells_rejected(),
        0,
        "honest peers' cells must all pass re-verification"
    );
    assert_eq!(a_interp.cells_rejected(), 0);

    let b_solves = nodes[1].service().cache().misses();
    assert!(
        b_solves <= BUDGET,
        "B spent {b_solves} exact solves, budget is {BUDGET} (15% of {POINTS})"
    );
    assert!(
        b_solves < a_solves,
        "warm-from-peer ({b_solves} solves) must be cheaper than the cold \
         build ({a_solves} solves)"
    );

    // Exact mode through the warm node is still bit-identical — shipped
    // cells only ever answer tolerant queries.
    for (s, lib) in sweep.iter().zip(&library).step_by(100) {
        let served = b.predict(s).expect("exact predict on warm B");
        assert!(
            predictions_identical(&served, lib),
            "exact mode on a warm node drifted from the library"
        );
    }

    for handle in nodes {
        handle.shutdown();
    }
}
