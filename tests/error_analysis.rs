//! §5.3's quantitative error claims, end to end:
//!
//! * LoPC over-predicts total runtime by at most ~6 % (worst at `W = 0`),
//!   asymptotically exact as `W` grows;
//! * a contention-free (naive LogP) analysis under-predicts by up to 37 %
//!   at `W = 0` and still ~13 % at `W = 1024`.

use lopc::prelude::*;

fn measure(machine: Machine, w: f64, seed: u64) -> f64 {
    let wl = AllToAllWorkload::new(machine, w).with_window(Window::quick());
    lopc::sim::run(&wl.sim_config(seed))
        .unwrap()
        .aggregate
        .mean_r
}

#[test]
fn lopc_error_small_and_shrinking() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let mut errs = Vec::new();
    for &w in &[0.0, 256.0, 2048.0] {
        let model = AllToAll::new(machine, w).solve().unwrap().r;
        let sim = measure(machine, w, 21);
        errs.push(((model - sim) / sim).abs());
    }
    // Everywhere small...
    for (i, e) in errs.iter().enumerate() {
        assert!(*e < 0.09, "point {i}: err {:.1}%", e * 100.0);
    }
    // ...and the W=2048 error is below the W=0 error (asymptotic exactness).
    assert!(errs[2] < errs[0], "error should shrink with W: {:?}", errs);
}

#[test]
fn lopc_is_pessimistic_at_high_contention() {
    // Bard's approximation overestimates queues, so at W=0 the model
    // over-predicts (never under): the paper's "slightly pessimistic".
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let model = AllToAll::new(machine, 0.0).solve().unwrap().r;
    for seed in [1u64, 2, 3] {
        let sim = measure(machine, 0.0, seed);
        assert!(
            model > sim * 0.99,
            "model {model} should not under-predict sim {sim}"
        );
    }
}

#[test]
fn logp_underpredicts_37_percent_at_w0_13_percent_at_w1024() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);

    let sim0 = measure(machine, 0.0, 9);
    let logp0 = machine.contention_free_response(0.0);
    let err0 = (logp0 - sim0) / sim0;
    // Paper: −37 %. Allow a generous band around it.
    assert!(
        (-0.45..=-0.25).contains(&err0),
        "LogP error at W=0: {:.1}% (paper: -37%)",
        err0 * 100.0
    );

    let sim1024 = measure(machine, 1024.0, 9);
    let logp1024 = machine.contention_free_response(1024.0);
    let err1024 = (logp1024 - sim1024) / sim1024;
    // Paper: −13 %.
    assert!(
        (-0.20..=-0.07).contains(&err1024),
        "LogP error at W=1024: {:.1}% (paper: -13%)",
        err1024 * 100.0
    );
}

#[test]
fn logp_absolute_error_stays_one_handler() {
    // The contention-free model's *absolute* error barely moves with W
    // (§5.3: "remains constant even as the work between requests
    // increases").
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let abs_err = |w: f64| {
        let sim = measure(machine, w, 31);
        sim - machine.contention_free_response(w)
    };
    let e_small = abs_err(64.0);
    let e_large = abs_err(2048.0);
    assert!(e_small > 100.0 && e_small < 320.0, "err {e_small}");
    assert!(e_large > 100.0 && e_large < 320.0, "err {e_large}");
    assert!(
        (e_small - e_large).abs() < 120.0,
        "absolute error moved too much: {e_small} vs {e_large}"
    );
}

#[test]
fn reply_contention_is_the_worst_predicted_component() {
    // Paper: most of the contention over-prediction at W=0 is in the reply
    // handler (~76 % over).
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let sol = AllToAll::new(machine, 0.0).solve().unwrap();
    let wl = AllToAllWorkload::new(machine, 0.0).with_window(Window::quick());
    let sim = lopc::sim::run(&wl.sim_config(41)).unwrap();
    let ry_model_c = sol.ry - 200.0;
    let ry_sim_c = sim.aggregate.mean_ry - 200.0;
    let rq_model_c = sol.rq - 200.0;
    let rq_sim_c = sim.aggregate.mean_rq - 200.0;
    let ry_err = (ry_model_c - ry_sim_c) / ry_sim_c;
    let rq_err = (rq_model_c - rq_sim_c) / rq_sim_c;
    assert!(
        ry_err > rq_err,
        "reply contention should be over-predicted more: ry {:.0}% vs rq {:.0}%",
        ry_err * 100.0,
        rq_err * 100.0
    );
    assert!(
        ry_err > 0.2,
        "reply over-prediction is large: {:.0}%",
        ry_err * 100.0
    );
}
