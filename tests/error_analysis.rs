//! §5.3's quantitative error claims, end to end:
//!
//! * LoPC over-predicts total runtime by at most ~6 % (worst at `W = 0`),
//!   asymptotically exact as `W` grows;
//! * a contention-free (naive LogP) analysis under-predicts by up to 37 %
//!   at `W = 0` and still ~13 % at `W = 1024`.
//!
//! All measurements are replicated means with Student-t confidence
//! intervals (DESIGN.md §8); the error-band assertions hold for the whole
//! interval, not a lucky point sample.

use lopc::prelude::*;

/// Replicated mean-response summary for one `(machine, W)` point.
fn measure(machine: Machine, w: f64, base_seed: u64) -> Summary {
    let wl = AllToAllWorkload::new(machine, w).with_window(Window::quick());
    let mut cfg = wl.sim_config(base_seed);
    cfg.seed = test_seed(cfg.seed);
    let reps = run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.mean_r).unwrap();
    reps.summary(|r| r.aggregate.mean_r)
}

/// The signed relative-error interval of a prediction against a replicated
/// measurement: `(model − sim)/sim` evaluated at both CI endpoints (the
/// error is monotone in the measured value, so these bound the error over
/// the interval).
fn err_interval(model: f64, sim: &Summary) -> (f64, f64) {
    let (lo, hi) = sim.ci(Confidence::P95);
    let e_at_hi = (model - hi) / hi;
    let e_at_lo = (model - lo) / lo;
    (e_at_hi.min(e_at_lo), e_at_hi.max(e_at_lo))
}

#[test]
fn lopc_error_small_and_shrinking() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let mut abs_errs = Vec::new();
    for &w in &[0.0, 256.0, 2048.0] {
        let model = AllToAll::new(machine, w).solve().unwrap().r;
        let sim = measure(machine, w, 21);
        let (e_lo, e_hi) = err_interval(model, &sim);
        // Everywhere small: the whole error interval within ±9 %.
        assert!(
            e_lo > -0.09 && e_hi < 0.09,
            "W={w}: error interval [{:.2}%, {:.2}%] too wide",
            e_lo * 100.0,
            e_hi * 100.0
        );
        abs_errs.push(((model - sim.mean) / sim.mean).abs());
    }
    // ...and the W=2048 error is below the W=0 error (asymptotic
    // exactness). Relative errors of replicated means are stable enough for
    // a direct comparison.
    assert!(
        abs_errs[2] < abs_errs[0],
        "error should shrink with W: {abs_errs:?}"
    );
}

#[test]
fn lopc_is_pessimistic_at_high_contention() {
    // Bard's approximation overestimates queues, so at W=0 the model
    // over-predicts (never under): the paper's "slightly pessimistic". The
    // claim is one-sided, so the test is: the model prediction must not
    // fall below the lower confidence bound of the measurement (with 1 %
    // numerical grace).
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let model = AllToAll::new(machine, 0.0).solve().unwrap().r;
    let sim = measure(machine, 0.0, 1);
    let (lo, _) = sim.ci(Confidence::P95);
    assert!(
        model > lo * 0.99,
        "model {model} should not under-predict sim CI lower bound {lo} (n={})",
        sim.n
    );
}

#[test]
fn logp_underpredicts_37_percent_at_w0_13_percent_at_w1024() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);

    let sim0 = measure(machine, 0.0, 9);
    let logp0 = machine.contention_free_response(0.0);
    let (e_lo, e_hi) = err_interval(logp0, &sim0);
    // Paper: −37 %. The whole error interval must stay in a generous band
    // around it.
    assert!(
        e_lo > -0.45 && e_hi < -0.25,
        "LogP error at W=0: [{:.1}%, {:.1}%] (paper: -37%)",
        e_lo * 100.0,
        e_hi * 100.0
    );

    let sim1024 = measure(machine, 1024.0, 9);
    let logp1024 = machine.contention_free_response(1024.0);
    let (e_lo, e_hi) = err_interval(logp1024, &sim1024);
    // Paper: −13 %.
    assert!(
        e_lo > -0.20 && e_hi < -0.07,
        "LogP error at W=1024: [{:.1}%, {:.1}%] (paper: -13%)",
        e_lo * 100.0,
        e_hi * 100.0
    );
}

#[test]
fn logp_absolute_error_stays_one_handler() {
    // The contention-free model's *absolute* error barely moves with W
    // (§5.3: "remains constant even as the work between requests
    // increases").
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let abs_err = |w: f64| {
        let sim = measure(machine, w, 31);
        sim.mean - machine.contention_free_response(w)
    };
    let e_small = abs_err(64.0);
    let e_large = abs_err(2048.0);
    assert!(e_small > 100.0 && e_small < 320.0, "err {e_small}");
    assert!(e_large > 100.0 && e_large < 320.0, "err {e_large}");
    assert!(
        (e_small - e_large).abs() < 120.0,
        "absolute error moved too much: {e_small} vs {e_large}"
    );
}

#[test]
fn reply_contention_is_the_worst_predicted_component() {
    // Paper: most of the contention over-prediction at W=0 is in the reply
    // handler (~76 % over). Component contentions come from one replication
    // set; the over-prediction ordering is judged on replication means.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let sol = AllToAll::new(machine, 0.0).solve().unwrap();
    let wl = AllToAllWorkload::new(machine, 0.0).with_window(Window::quick());
    let mut cfg = wl.sim_config(41);
    cfg.seed = test_seed(cfg.seed);
    let reps = run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.mean_r).unwrap();
    let ry_sim_c = reps.summary(|r| r.aggregate.mean_ry).mean - 200.0;
    let rq_sim_c = reps.summary(|r| r.aggregate.mean_rq).mean - 200.0;
    let ry_model_c = sol.ry - 200.0;
    let rq_model_c = sol.rq - 200.0;
    let ry_err = (ry_model_c - ry_sim_c) / ry_sim_c;
    let rq_err = (rq_model_c - rq_sim_c) / rq_sim_c;
    assert!(
        ry_err > rq_err,
        "reply contention should be over-predicted more: ry {:.0}% vs rq {:.0}%",
        ry_err * 100.0,
        rq_err * 100.0
    );
    assert!(
        ry_err > 0.2,
        "reply over-prediction is large: {:.0}%",
        ry_err * 100.0
    );
}
