//! Single-long-run confidence intervals: the per-cycle trace feeds
//! `lopc_stats::batch_means`, and the result is pinned against the
//! replication CI on the same configuration (ROADMAP open item).
//!
//! Why it matters: for expensive configurations (large `P`, long horizons)
//! 5+ independent replications are unaffordable, but one long run is not.
//! Batch means turns that one run's autocorrelated per-cycle series into an
//! honest interval. This suite shows the two estimators agree on a
//! configuration where both are affordable — the evidence that licenses
//! using batch means alone on the configurations where replications are
//! not.

use lopc::prelude::*;
use lopc_dist::ServiceTime;

/// A moderately contended all-to-all machine; the horizon is scaled by
/// `windows` multiples of the base measurement window.
fn cfg(windows: f64, seed: u64) -> SimConfig {
    let base = 50_000.0;
    SimConfig {
        p: 8,
        net_latency: 25.0,
        request_handler: ServiceTime::exponential(100.0),
        reply_handler: ServiceTime::exponential(100.0),
        threads: vec![ThreadSpec::worker(ServiceTime::exponential(400.0)); 8],
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::Horizon {
            warmup: 10_000.0,
            end: 10_000.0 + base * windows,
        },
        seed,
    }
}

#[test]
fn batch_means_ci_agrees_with_replication_ci() {
    let seed = test_seed(71);

    // Replication path: independent runs of the base window.
    let reps = run_replications(&cfg(1.0, seed), 8).unwrap();
    let rep_sum = reps.summary(|r| r.aggregate.mean_r);
    let (rep_lo, rep_hi) = rep_sum.ci(Confidence::P95);

    // Single-long-run path: one run, 8x the window, batch-means over the
    // per-cycle trace — same simulated-cycle budget as the replications.
    let traced = run_traced(&cfg(8.0, seed + 100)).unwrap();
    assert!(
        traced.cycle_trace.len() as u64 == traced.aggregate.total_cycles,
        "trace covers every measured cycle"
    );
    let batch_sum = batch_means(&traced.cycle_trace, 16);
    let (bat_lo, bat_hi) = batch_sum.ci(Confidence::P95);

    // The batch mean is exact for (the truncated prefix of) its own run.
    let direct: f64 = traced.cycle_trace.iter().sum::<f64>() / traced.cycle_trace.len() as f64;
    assert!(
        (batch_sum.mean - direct).abs() < 1.0,
        "batch mean {} vs direct trace mean {direct}",
        batch_sum.mean
    );

    // Pin the two estimators against each other: same quantity, so the
    // point estimates sit within a few percent and the intervals overlap.
    let rel_gap = (batch_sum.mean - rep_sum.mean).abs() / rep_sum.mean;
    assert!(
        rel_gap < 0.05,
        "batch-means mean {} vs replication mean {} ({:.1}% apart)",
        batch_sum.mean,
        rep_sum.mean,
        rel_gap * 100.0
    );
    assert!(
        bat_lo < rep_hi && rep_lo < bat_hi,
        "intervals must overlap: batch [{bat_lo:.1}, {bat_hi:.1}] vs replication [{rep_lo:.1}, {rep_hi:.1}]"
    );

    // And both intervals are informative (neither collapsed nor unbounded).
    assert!(rep_sum.half_width(Confidence::P95).is_finite());
    assert!(batch_sum.half_width(Confidence::P95).is_finite());
    assert!(batch_sum.half_width(Confidence::P95) > 0.0);
}

#[test]
fn naive_ci_on_the_trace_undercovers_but_batch_means_does_not() {
    // The reason batch means exists: per-cycle samples inside one run are
    // positively autocorrelated, so the naive iid interval over the raw
    // trace is far too narrow. The homogeneous pooled trace interleaves 8
    // independent nodes (which dilutes the correlation), so this claim is
    // demonstrated where the correlation physically lives: a work-pile with
    // ONE shared server, whose persistent queue length couples every
    // cycle's response to its neighbours'. Short client work keeps the
    // server heavily loaded, so the queue — and the correlation — persists
    // across cycles regardless of the seed.
    let p = 8;
    let mut threads = vec![ThreadSpec::server()];
    for _ in 1..p {
        threads.push(ThreadSpec {
            work: Some(ServiceTime::exponential(150.0)),
            dest: DestChooser::Fixed(0),
            hops: 1,
            fanout: 1,
        });
    }
    let cfg = SimConfig {
        p,
        net_latency: 25.0,
        request_handler: ServiceTime::exponential(131.0),
        reply_handler: ServiceTime::exponential(131.0),
        threads,
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::Horizon {
            warmup: 10_000.0,
            end: 410_000.0,
        },
        seed: test_seed(72),
    };
    let traced = run_traced(&cfg).unwrap();
    let naive_hw = Summary::from_samples(&traced.cycle_trace).half_width(Confidence::P95);
    let batch_hw = batch_means(&traced.cycle_trace, 16).half_width(Confidence::P95);
    assert!(
        batch_hw > 1.5 * naive_hw,
        "autocorrelation must widen the honest interval: batch {batch_hw} vs naive {naive_hw}"
    );
}
