//! Smoke test: every experiment in the benchmark harness runs in quick mode
//! and produces non-empty, well-formed output. (Deep assertions live in each
//! experiment's own unit tests.)

use lopc_bench_smoke::check_all;

// The bench crate is not a dependency of the umbrella crate (it depends on
// the umbrella's members instead), so smoke-test through its public binary
// interface: run `figures --quick --exp <id>` for each id.
mod lopc_bench_smoke {
    use std::path::PathBuf;
    use std::process::Command;

    fn figures_bin() -> Option<PathBuf> {
        // target/<profile>/figures, relative to this test binary.
        let mut path = std::env::current_exe().ok()?;
        path.pop(); // test binary
        path.pop(); // deps/
        path.push("figures");
        path.exists().then_some(path)
    }

    pub fn check_all() {
        let Some(bin) = figures_bin() else {
            eprintln!("figures binary not built alongside tests; skipping smoke test");
            return;
        };
        let out_dir = std::env::temp_dir().join("lopc_figures_smoke");
        let _ = std::fs::remove_dir_all(&out_dir);
        // The cheapest pure-model experiments keep the smoke test fast; the
        // simulation-heavy ones are covered by the bench crate's own tests.
        for exp in ["fig5_1", "rule_of_thumb"] {
            let output = Command::new(&bin)
                .args(["--quick", "--exp", exp, "--out"])
                .arg(&out_dir)
                .output()
                .expect("figures runs");
            assert!(
                output.status.success(),
                "figures --exp {exp} failed: {}",
                String::from_utf8_lossy(&output.stderr)
            );
            let stdout = String::from_utf8_lossy(&output.stdout);
            assert!(stdout.contains(exp), "output names the experiment");
            assert!(stdout.contains("headlines:"), "output has headlines");
        }
        // fig5_1 writes a CSV.
        let wrote_csv = std::fs::read_dir(&out_dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false);
        assert!(wrote_csv, "figures wrote CSV output");
        let _ = std::fs::remove_dir_all(&out_dir);
    }
}

#[test]
fn figures_binary_regenerates_experiments() {
    check_all();
}
