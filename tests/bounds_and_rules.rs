//! The analytical guarantees of §5.3: the eq. 5.12 bounds, the κ constants,
//! and the one-extra-handler rule of thumb — checked for the model and
//! against simulation.

use lopc::model::all_to_all::upper_bound_constant;
use lopc::prelude::*;

#[test]
fn kappa_constants_match_paper() {
    // κ(0) rounds to the paper's 3.46 and is a strict upper bound.
    let k0 = upper_bound_constant(0.0);
    assert!((3.40..=3.46).contains(&k0), "κ(0) = {k0}");
    // Monotone in C².
    let k1 = upper_bound_constant(1.0);
    let k2 = upper_bound_constant(2.0);
    assert!(k0 < k1 && k1 < k2);
}

#[test]
fn bounds_hold_for_model_across_grid() {
    for &p in &[4usize, 32, 256] {
        for &st in &[0.0, 25.0, 500.0] {
            for &so in &[1.0, 200.0] {
                for &w in &[0.0, 100.0, 10_000.0] {
                    let model = AllToAll::new(Machine::new(p, st, so).with_c2(0.0), w);
                    let sol = model.solve().unwrap();
                    assert!(
                        sol.r > model.contention_free() && sol.r <= model.upper_bound() + 1e-9,
                        "bounds violated at P={p} St={st} So={so} W={w}: R={}",
                        sol.r
                    );
                }
            }
        }
    }
}

#[test]
fn bounds_hold_for_simulator() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    for &w in &[2.0, 32.0, 512.0] {
        let model = AllToAll::new(machine, w);
        let wl = AllToAllWorkload::new(machine, w).with_window(Window::quick());
        let r = lopc::sim::run(&wl.sim_config(3)).unwrap().aggregate.mean_r;
        assert!(
            r > model.contention_free() * 0.995,
            "W={w}: sim {r} below lower bound"
        );
        assert!(
            r < model.upper_bound() * 1.03,
            "W={w}: sim {r} above upper bound"
        );
    }
}

#[test]
fn rule_of_thumb_contention_is_one_handler() {
    // "On average every message either interrupts an active job or causes
    // another request to queue" — contention ≈ So across the W range, in
    // both model and simulation.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    for &w in &[16.0, 256.0, 2048.0] {
        let sol = AllToAll::new(machine, w).solve().unwrap();
        assert!(
            sol.contention > 0.4 * 200.0 && sol.contention < 1.5 * 200.0,
            "W={w}: model contention {}",
            sol.contention
        );
        let wl = AllToAllWorkload::new(machine, w).with_window(Window::quick());
        let sim_r = lopc::sim::run(&wl.sim_config(7)).unwrap().aggregate.mean_r;
        let sim_c = sim_r - machine.contention_free_response(w);
        assert!(
            sim_c > 0.2 * 200.0 && sim_c < 1.5 * 200.0,
            "W={w}: sim contention {sim_c}"
        );
    }
}

#[test]
fn contention_free_fraction_vanishes_with_work() {
    // Relative contention goes to zero as W grows; absolute stays ~one
    // handler (the reason LogP's absolute error persists, §5.3).
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let small = AllToAll::new(machine, 16.0).solve().unwrap();
    let large = AllToAll::new(machine, 8192.0).solve().unwrap();
    assert!(small.contention / small.r > 0.2);
    assert!(large.contention / large.r < 0.05);
    assert!((large.contention - small.contention).abs() < 200.0);
}

#[test]
fn fig5_1_six_percent_claim() {
    // Constant vs exponential handlers differ by ~6 % of response time at
    // W = 1000 (Figure 5-1's reading).
    let m = Machine::new(32, 25.0, 1024.0);
    let r0 = AllToAll::new(m.with_c2(0.0), 1000.0).solve().unwrap().r;
    let r1 = AllToAll::new(m.with_c2(1.0), 1000.0).solve().unwrap().r;
    let gap = (r1 - r0) / r1;
    assert!((0.02..=0.10).contains(&gap), "gap {:.1}%", gap * 100.0);
}
