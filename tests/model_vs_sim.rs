//! Cross-crate validation: the LoPC model against the event-driven simulator
//! on every workload family — the reproduction's core claim (§5.3/§6: errors
//! within ~6 %; we allow slightly wider bands because test windows are
//! shorter than the harness's).
//!
//! # Seed-pinned tolerance bands (DESIGN.md §8)
//!
//! These tests run the simulator over the shortened `Window::quick()`
//! measurement window to stay tier-1 fast, so the measured model-vs-sim
//! error is partly a function of the RNG seed. Every test therefore **pins
//! its seed**, and the band below was hand-tuned *for that seed*:
//!
//! | test | seed | band |
//! |------|------|------|
//! | `all_to_all_across_machines` | 91 | rel. error < 10 % |
//! | `general_model_matches_sim_on_client_server` | 17 | rel. error < 10 % |
//! | `response_decomposition_matches_between_model_and_sim` | 5 | per-component < 15 % |
//! | `queueing_quantities_match` | 23 | abs. `Uq` < 0.05, `Qq` < 0.12 |
//! | `protocol_processor_model_matches_sim` | 3 | rel. error < 10 % |
//! | `c2_correction_improves_accuracy_on_constant_handlers` | 37 | comparative (corrected beats naive) |
//!
//! Diagnosing a failure here: the simulator is bit-reproducible for a fixed
//! seed and scheduler, and the differential tests
//! (`crates/sim/tests/differential.rs`) prove the schedulers are
//! observationally equivalent — so a band failure is **never** scheduler
//! noise or flake. Either the engine/model behaviour changed (diff the
//! simulated event count first) or a band is genuinely too tight for a new
//! seed. Do not loosen a band without recording the new seed here.
//! Replication-aware confidence intervals (ROADMAP) are the planned
//! replacement for hand-tuned bands.

use lopc::prelude::*;

fn quick(machine: Machine, w: f64) -> AllToAllWorkload {
    AllToAllWorkload::new(machine, w).with_window(Window::quick())
}

#[test]
fn all_to_all_across_machines() {
    for &(p, st, so, c2) in &[
        (8usize, 10.0, 100.0, 0.0),
        (16, 25.0, 200.0, 0.0),
        (32, 25.0, 200.0, 1.0),
        (32, 50.0, 131.0, 2.0),
    ] {
        let machine = Machine::new(p, st, so).with_c2(c2);
        for &w in &[0.0, 4.0 * so, 16.0 * so] {
            let wl = quick(machine, w);
            let sim = lopc::sim::run(&wl.sim_config(91)).unwrap().aggregate.mean_r;
            let model = wl.model().solve().unwrap().r;
            let err = (model - sim).abs() / sim;
            assert!(
                err < 0.10,
                "P={p} St={st} So={so} C2={c2} W={w}: model {model} vs sim {sim} ({:.1}%)",
                err * 100.0
            );
        }
    }
}

#[test]
fn general_model_matches_sim_on_client_server() {
    let machine = Machine::new(16, 50.0, 131.0).with_c2(0.0);
    for ps in [2usize, 4, 8] {
        let wl = Workpile::new(machine, 800.0, ps).with_window(Window::quick());
        let x_sim = lopc::sim::run(&wl.sim_config(17))
            .unwrap()
            .aggregate
            .throughput;
        let x_general = wl.general_model().solve().unwrap().system_throughput();
        let x_scalar = wl.model().throughput(ps).unwrap().x;
        // Scalar §6 recursion and Appendix A system agree with each other...
        assert!(
            (x_general - x_scalar).abs() / x_scalar < 1e-6,
            "ps={ps}: general {x_general} vs scalar {x_scalar}"
        );
        // ... and with the machine.
        let err = (x_scalar - x_sim).abs() / x_sim;
        assert!(
            err < 0.10,
            "ps={ps}: model {x_scalar} vs sim {x_sim} ({:.1}%)",
            err * 100.0
        );
    }
}

#[test]
fn response_decomposition_matches_between_model_and_sim() {
    // Not just the total: each component (Rw, Rq, Ry) must track.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 400.0);
    let sim = lopc::sim::run(&wl.sim_config(5)).unwrap();
    let sol = wl.model().solve().unwrap();
    let a = &sim.aggregate;
    for (name, model, sim_v) in [
        ("Rw", sol.rw, a.mean_rw),
        ("Rq", sol.rq, a.mean_rq),
        ("Ry", sol.ry, a.mean_ry),
    ] {
        let err = (model - sim_v).abs() / sim_v;
        assert!(
            err < 0.15,
            "{name}: model {model:.1} vs sim {sim_v:.1} ({:.1}%)",
            err * 100.0
        );
    }
}

#[test]
fn queueing_quantities_match() {
    // Little's-law quantities: utilisations and populations.
    let machine = Machine::new(16, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 200.0);
    let sim = lopc::sim::run(&wl.sim_config(23)).unwrap();
    let sol = wl.model().solve().unwrap();
    let uq_sim = sim.aggregate.mean_uq;
    let qq_sim = sim.aggregate.mean_qq;
    assert!(
        (sol.uq - uq_sim).abs() < 0.05,
        "Uq: model {} vs sim {uq_sim}",
        sol.uq
    );
    assert!(
        (sol.qq - qq_sim).abs() < 0.12,
        "Qq: model {} vs sim {qq_sim}",
        sol.qq
    );
}

#[test]
fn protocol_processor_model_matches_sim() {
    let machine = Machine::new(16, 25.0, 300.0).with_c2(1.0);
    let wl = quick(machine, 900.0);
    let sim = lopc::sim::run(&wl.sim_config_protocol_processor(3)).unwrap();
    let sol = lopc::model::GeneralModel::homogeneous_all_to_all(machine, 900.0)
        .with_protocol_processor()
        .solve()
        .unwrap();
    let err = (sol.r[0] - sim.aggregate.mean_r).abs() / sim.aggregate.mean_r;
    assert!(
        err < 0.10,
        "PP: model {} vs sim {} ({:.1}%)",
        sol.r[0],
        sim.aggregate.mean_r,
        err * 100.0
    );
    // Rw is exactly W in both.
    assert!((sim.aggregate.mean_rw - 900.0).abs() < 1e-9);
    assert!((sol.rw[8] - 900.0).abs() < 1e-9);
}

#[test]
fn c2_correction_improves_accuracy_on_constant_handlers() {
    // Ablation: with constant handlers, the C²=0 model should beat the
    // exponential-default model against the simulator.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 64.0);
    let sim = lopc::sim::run(&wl.sim_config(37)).unwrap().aggregate.mean_r;
    let with_corr = AllToAll::new(machine, 64.0).solve().unwrap().r;
    let without = AllToAll::new(machine.with_c2(1.0), 64.0).solve().unwrap().r;
    assert!(
        (with_corr - sim).abs() < (without - sim).abs(),
        "C² correction must help: corrected {with_corr:.1}, naive {without:.1}, sim {sim:.1}"
    );
}
