//! Cross-crate validation: the LoPC model against the event-driven simulator
//! on every workload family — the reproduction's core claim (§5.3/§6: errors
//! within ~6 %; margins here are slightly wider because test windows are
//! shorter than the harness's).
//!
//! # Replication CI protocol (DESIGN.md §8)
//!
//! Every model-vs-sim assertion goes through
//! [`assert_model_matches_sim`](lopc::sim::validate): independent
//! replications (seeds `base, base+1, …`) run under a sequential stopping
//! rule until the 95 % Student-t confidence interval of the measured mean is
//! tight (±3 % relative by default, capped at 16 replications), then the
//! *whole interval* must sit inside the model's equivalence margin. There
//! are **no seed-pinned tolerance bands**: the base seeds below are
//! arbitrary, and the suite must pass for any of them — CI rotates them via
//! `LOPC_TEST_SEED_OFFSET` and flips the pending-event scheduler via
//! `LOPC_TEST_SCHEDULER` to prove it.
//!
//! Diagnosing a failure here: the simulator is bit-reproducible for a fixed
//! seed, and the differential tests (`crates/sim/tests/differential.rs`)
//! prove the schedulers are observationally equivalent — so a failure is
//! **never** scheduler noise, and replication has already averaged out seed
//! luck. Either the engine/model behaviour changed (diff the simulated event
//! count first), or the model's bias genuinely exceeds the stated margin —
//! the failure message prints the prediction, the interval, and the
//! replication count to tell the two apart.

use lopc::prelude::*;

fn quick(machine: Machine, w: f64) -> AllToAllWorkload {
    AllToAllWorkload::new(machine, w).with_window(Window::quick())
}

#[test]
fn all_to_all_across_machines() {
    for &(p, st, so, c2) in &[
        (8usize, 10.0, 100.0, 0.0),
        (16, 25.0, 200.0, 0.0),
        (32, 25.0, 200.0, 1.0),
        (32, 50.0, 131.0, 2.0),
    ] {
        let machine = Machine::new(p, st, so).with_c2(c2);
        for &w in &[0.0, 4.0 * so, 16.0 * so] {
            let wl = quick(machine, w);
            let model = wl.model().solve().unwrap().r;
            // Asymmetric on purpose: LoPC's documented bias direction is
            // *over*-prediction (worst at W = 0, §5.3), so the measurement
            // gets more room below the prediction than above it.
            assert_model_matches_sim(
                &format!("all-to-all R, P={p} St={st} So={so} C2={c2} W={w}"),
                &wl.sim_config(91),
                model,
                |r| r.aggregate.mean_r,
                &Validation::band(0.13, 0.06),
            );
        }
    }
}

#[test]
fn general_model_matches_sim_on_client_server() {
    let machine = Machine::new(16, 50.0, 131.0).with_c2(0.0);
    for ps in [2usize, 4, 8] {
        let wl = Workpile::new(machine, 800.0, ps).with_window(Window::quick());
        let x_general = wl.general_model().solve().unwrap().system_throughput();
        let x_scalar = wl.model().throughput(ps).unwrap().x;
        // Scalar §6 recursion and Appendix A system agree with each other...
        assert!(
            (x_general - x_scalar).abs() / x_scalar < 1e-6,
            "ps={ps}: general {x_general} vs scalar {x_scalar}"
        );
        // ... and with the machine.
        assert_model_matches_sim(
            &format!("work-pile throughput, ps={ps}"),
            &wl.sim_config(17),
            x_scalar,
            |r| r.aggregate.throughput,
            &Validation::equivalence(0.10),
        );
    }
}

#[test]
fn response_decomposition_matches_between_model_and_sim() {
    // Not just the total: each component (Rw, Rq, Ry) must track. One
    // replication set serves all four checks — components are judged
    // against the same runs the total was.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 400.0);
    let sol = wl.model().solve().unwrap();
    let v = Validation::equivalence(0.15);
    let reps = assert_model_matches_sim(
        "decomposition total R",
        &wl.sim_config(5),
        sol.r,
        |r| r.aggregate.mean_r,
        &v,
    );
    for (name, model, stat) in [
        (
            "Rw",
            sol.rw,
            (|r| r.aggregate.mean_rw) as fn(&lopc::sim::SimReport) -> f64,
        ),
        ("Rq", sol.rq, |r| r.aggregate.mean_rq),
        ("Ry", sol.ry, |r| r.aggregate.mean_ry),
    ] {
        let report = v.check_stat(&reps, model, stat);
        assert!(report.passed, "component {name}: {report}");
    }
}

#[test]
fn queueing_quantities_match() {
    // Little's-law quantities: utilisations and populations. These live on
    // [0, 1]-ish scales, so the margins are absolute, not relative.
    let machine = Machine::new(16, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 200.0);
    let sol = wl.model().solve().unwrap();
    let uq = Validation::abs_equivalence(0.05);
    let reps = assert_model_matches_sim(
        "Uq",
        &wl.sim_config(23),
        sol.uq,
        |r| r.aggregate.mean_uq,
        &uq,
    );
    let qq = Validation::abs_equivalence(0.12);
    let report = qq.check_stat(&reps, sol.qq, |r| r.aggregate.mean_qq);
    assert!(report.passed, "Qq: {report}");
}

#[test]
fn protocol_processor_model_matches_sim() {
    let machine = Machine::new(16, 25.0, 300.0).with_c2(1.0);
    let wl = quick(machine, 900.0);
    let sol = lopc::model::GeneralModel::homogeneous_all_to_all(machine, 900.0)
        .with_protocol_processor()
        .solve()
        .unwrap();
    let reps = assert_model_matches_sim(
        "protocol-processor R",
        &wl.sim_config_protocol_processor(3),
        sol.r[0],
        |r| r.aggregate.mean_r,
        &Validation::equivalence(0.10),
    );
    // Rw is exactly W in both (deterministic, no interval needed).
    for r in &reps.reports {
        assert!((r.aggregate.mean_rw - 900.0).abs() < 1e-9);
    }
    assert!((sol.rw[8] - 900.0).abs() < 1e-9);
}

#[test]
fn c2_correction_improves_accuracy_on_constant_handlers() {
    // Ablation: with constant handlers, the C²=0 model should beat the
    // exponential-default model against the simulator. Comparative, so no
    // margin — but the measurement is still a replicated mean at ±3 %
    // precision, not one seed's draw.
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let wl = quick(machine, 64.0);
    let mut cfg = wl.sim_config(37);
    cfg.seed = test_seed(cfg.seed);
    let reps = run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.mean_r).unwrap();
    let sim = reps.summary(|r| r.aggregate.mean_r).mean;
    let with_corr = AllToAll::new(machine, 64.0).solve().unwrap().r;
    let without = AllToAll::new(machine.with_c2(1.0), 64.0).solve().unwrap().r;
    assert!(
        (with_corr - sim).abs() < (without - sim).abs(),
        "C² correction must help: corrected {with_corr:.1}, naive {without:.1}, sim mean {sim:.1} over {} reps",
        reps.reports.len()
    );
}
