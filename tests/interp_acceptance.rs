//! Acceptance: the sweep-accuracy and solve-budget gate for certified
//! interpolation (the CI `interp-accuracy` job runs exactly this suite).
//!
//! The headline claim of the interpolation layer, asserted end to end over
//! a real socket:
//!
//! * a 1 000-point `W`-sweep through `POST /v1/predict/batch` with
//!   `max_rel_err = 1e-3` performs **at most 15 %** of the exact solves the
//!   cache-cold exact path would (each distinct sweep point used to cost
//!   one solve);
//! * **every** returned prediction is within `1e-3` relative error of the
//!   scenario's exact library solve;
//! * with the field omitted, responses remain bit-identical to
//!   `lopc_core::scenario::solve` — the `tests/serve_vs_library.rs`
//!   contract is untouched.

use lopc::prelude::*;
use lopc_serve::interp::rel_resid;
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::{predictions_identical, Client};

fn sweep_machine() -> Machine {
    // The canonical thesis machine: P = 32, St = 25, So = 200, C² = 0.
    // Its parameters sit on the reference grid, so the sweep builds 1-D
    // cells along W (two corners + one centre probe each).
    Machine::new(32, 25.0, 200.0).with_c2(0.0)
}

/// 1 000 distinct W values spanning 500..1500 cycles — the knee region of
/// Figure 5-1, where contention still bends the response curve.
fn w_sweep() -> Vec<Scenario> {
    (0..1000)
        .map(|i| Scenario::AllToAll {
            machine: sweep_machine(),
            w: 500.0 + 1000.0 * i as f64 / 999.0,
        })
        .collect()
}

#[test]
fn thousand_point_sweep_meets_budget_and_tolerance() {
    let scenarios = w_sweep();
    let tolerance = 1e-3;

    let server = start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let served = client
        .predict_batch_within(&scenarios, tolerance)
        .expect("batch");
    assert_eq!(served.len(), scenarios.len());

    // Solve budget: every exact solve the server performed is an
    // exact-cache miss; the cache-cold exact path would have done 1 000.
    let solves = server.service().cache().misses();
    let budget = scenarios.len() as u64 * 15 / 100;
    assert!(
        solves <= budget,
        "sweep performed {solves} exact solves; budget is {budget} (15 % of {})",
        scenarios.len()
    );
    let interp_hits = server.service().interp().interp_hits();
    assert!(
        interp_hits >= 800,
        "expected the vast majority of the sweep interpolated, got {interp_hits}"
    );

    // Accuracy: every prediction within 1e-3 of its own exact solve — both
    // on the headline fields and under the full certified metric.
    let mut worst = 0.0f64;
    for (s, p) in scenarios.iter().zip(&served) {
        let exact = lopc::model::scenario::solve(s).expect("exact solve");
        let r_err = (p.r - exact.r).abs() / exact.r;
        let x_err = (p.x - exact.x).abs() / exact.x;
        let full = rel_resid(p, &exact);
        worst = worst.max(full);
        assert!(
            r_err <= tolerance && x_err <= tolerance && full <= tolerance,
            "W-sweep point {s:?}: r_err {r_err:.2e}, x_err {x_err:.2e}, full {full:.2e} > {tolerance:.0e}"
        );
    }
    println!(
        "sweep: {solves} solves for {} points ({interp_hits} interpolated), worst residual {worst:.2e}",
        scenarios.len()
    );
    server.shutdown();
}

#[test]
fn omitting_the_field_stays_bit_identical_to_the_library() {
    // Same sweep shape, no tolerance: the pre-interpolation contract. Run
    // against a server that has *already* served the sweep approximately,
    // so exact mode is checked on a populated grid, not a fresh process.
    let scenarios: Vec<Scenario> = w_sweep().into_iter().step_by(100).collect();
    let server = start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .predict_batch_within(&scenarios, 1e-3)
        .expect("approximate warm-up");

    for s in &scenarios {
        let served = client.predict(s).expect("predict");
        let exact = lopc::model::scenario::solve(s).expect("solve");
        assert!(
            predictions_identical(&served, &exact),
            "{}: exact-mode answer drifted: {served:?} != {exact:?}",
            s.kind()
        );
    }
    let batch = client.predict_batch(&scenarios).expect("batch");
    for (s, p) in scenarios.iter().zip(&batch) {
        let exact = lopc::model::scenario::solve(s).expect("solve");
        assert!(predictions_identical(p, &exact), "batch {}", s.kind());
    }
    server.shutdown();
}

#[test]
fn tighter_tolerance_trades_solves_for_accuracy() {
    // The knob works both ways: asking for a tolerance below the
    // certificate floor forces the exact path (one solve per distinct
    // point), while the 1e-3 sweep above stays under 15 %. This pins the
    // *mechanism* (certificates gate interpolation), not just the happy
    // path.
    let scenarios: Vec<Scenario> = w_sweep().into_iter().take(50).collect();
    let server = start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let served = client
        .predict_batch_within(&scenarios, 1e-9)
        .expect("batch");
    for (s, p) in scenarios.iter().zip(&served) {
        let exact = lopc::model::scenario::solve(s).expect("solve");
        assert!(
            predictions_identical(p, &exact),
            "below-floor tolerance must serve exact answers"
        );
    }
    assert!(
        server.service().cache().misses() >= 50,
        "each distinct point must have been solved exactly"
    );
    server.shutdown();
}
