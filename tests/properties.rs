//! Property-based cross-crate tests: model-internal consistency and
//! model/simulator contracts over randomly drawn parameters.

use lopc::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The general Appendix A model collapses to the §5 closed form on
    /// homogeneous inputs, for any machine.
    #[test]
    fn general_equals_closed_form(
        p in 2usize..64,
        st in 0.0..500.0f64,
        so in 1.0..500.0f64,
        c2 in 0.0..3.0f64,
        w in 0.0..5000.0f64,
    ) {
        let machine = Machine::new(p, st, so).with_c2(c2);
        let closed = AllToAll::new(machine, w).solve().unwrap();
        let general = GeneralModel::homogeneous_all_to_all(machine, w).solve().unwrap();
        prop_assert!(
            (general.r[0] - closed.r).abs() / closed.r < 1e-5,
            "general {} vs closed {}", general.r[0], closed.r
        );
    }

    /// eq. 5.12 bounds hold for any valid machine.
    #[test]
    fn bounds_always_hold(
        st in 0.0..500.0f64,
        so in 0.1..1000.0f64,
        c2 in 0.0..4.0f64,
        w in 0.0..20_000.0f64,
    ) {
        let model = AllToAll::new(Machine::new(32, st, so).with_c2(c2), w);
        let sol = model.solve().unwrap();
        prop_assert!(sol.r > model.contention_free());
        prop_assert!(sol.r <= model.upper_bound() + 1e-6 * sol.r);
    }

    /// Response time is monotone in each parameter.
    #[test]
    fn model_monotonicity(
        st in 0.0..200.0f64,
        so in 1.0..400.0f64,
        w in 0.0..4000.0f64,
        bump in 1.0..100.0f64,
    ) {
        let m = Machine::new(32, st, so).with_c2(0.0);
        let base = AllToAll::new(m, w).solve().unwrap().r;
        let w_up = AllToAll::new(m, w + bump).solve().unwrap().r;
        let so_up = AllToAll::new(Machine::new(32, st, so + bump).with_c2(0.0), w)
            .solve().unwrap().r;
        let st_up = AllToAll::new(Machine::new(32, st + bump, so).with_c2(0.0), w)
            .solve().unwrap().r;
        prop_assert!(w_up > base);
        prop_assert!(so_up > base);
        prop_assert!(st_up > base);
    }

    /// The client-server fixed point satisfies eq. 6.7 and Little's law for
    /// any split.
    #[test]
    fn client_server_self_consistency(
        p in 3usize..64,
        st in 0.0..200.0f64,
        so in 1.0..400.0f64,
        c2 in 0.0..2.0f64,
        w in 0.0..5000.0f64,
        ps_frac in 0.01..0.99f64,
    ) {
        let machine = Machine::new(p, st, so).with_c2(c2);
        let ps = ((p as f64 * ps_frac) as usize).clamp(1, p - 1);
        let model = ClientServer::new(machine, w);
        let pt = model.throughput(ps).unwrap();
        prop_assert!((pt.r - (w + 2.0 * st + pt.rq + so)).abs() < 1e-6 * pt.r.max(1.0));
        prop_assert!((pt.x - pt.pc as f64 / pt.r).abs() < 1e-9 * pt.x.max(1.0));
        prop_assert!(pt.us < 1.0 + 1e-9);
    }

    /// The work-pile optimum from eq. 6.8 is within one server of the model
    /// sweep's argmax.
    #[test]
    fn optimum_matches_sweep(
        p in 4usize..48,
        so in 10.0..400.0f64,
        w in 10.0..8000.0f64,
        c2 in 0.0..2.0f64,
    ) {
        let machine = Machine::new(p, 25.0, so).with_c2(c2);
        let model = ClientServer::new(machine, w);
        let sweep = model.sweep().unwrap();
        let argmax = sweep.iter().max_by(|a, b| a.x.total_cmp(&b.x)).unwrap().ps;
        let closed = model.optimal_servers().unwrap();
        prop_assert!(
            (argmax as i64 - closed as i64).abs() <= 1,
            "argmax {argmax} vs closed {closed} (P={p} So={so} W={w} C2={c2})"
        );
    }
}

proptest! {
    // Simulator properties are costlier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-run identity: pooled means satisfy R = Rw + 2St + Rq + Ry, and
    /// conservation holds (each node completes > 0 cycles).
    #[test]
    fn sim_decomposition_and_conservation(
        p in 2usize..12,
        seed in 0u64..1000,
    ) {
        let st = 20.0;
        let machine = Machine::new(p, st, 100.0).with_c2(1.0);
        let wl = AllToAllWorkload::new(machine, 300.0).with_window(Window::quick());
        let report = lopc::sim::run(&wl.sim_config(seed)).unwrap();
        let a = &report.aggregate;
        prop_assert!((a.mean_r - (a.mean_rw + 2.0 * st + a.mean_rq + a.mean_ry)).abs() < 1e-6);
        for (i, n) in report.nodes.iter().enumerate() {
            prop_assert!(n.cycles > 0, "node {i} starved");
            prop_assert!(n.uq >= 0.0 && n.uq <= 1.0);
            prop_assert!(n.uq + n.uy + n.u_compute <= 1.0 + 1e-9);
        }
    }

    /// Bit-identical reruns under the same seed.
    #[test]
    fn sim_determinism(seed in 0u64..10_000) {
        let machine = Machine::new(6, 10.0, 80.0).with_c2(1.0);
        let wl = AllToAllWorkload::new(machine, 200.0).with_window(Window::quick());
        let a = lopc::sim::run(&wl.sim_config(seed)).unwrap();
        let b = lopc::sim::run(&wl.sim_config(seed)).unwrap();
        prop_assert_eq!(a.aggregate.mean_r, b.aggregate.mean_r);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.aggregate.total_cycles, b.aggregate.total_cycles);
    }
}
