//! Acceptance: the prediction service is the library, bit for bit.
//!
//! A mixed population of scenarios — every variant, several parameter
//! points each — is solved twice: directly through
//! `lopc_core::scenario::solve`, and through a running `lopc-serve`
//! instance over a real socket (singles and one batch). Every served
//! number must equal the library's exactly; any drift (a lossy codec, a
//! cache returning the wrong bucket, a divergent dispatch) fails here.

use lopc::prelude::*;
use lopc_serve::server::{start, start_on, ServerConfig};
use lopc_serve::{predictions_identical, Client, ClusterClient};

fn mixed_scenarios() -> Vec<Scenario> {
    let m32 = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let m16 = Machine::new(16, 50.0, 131.0).with_c2(1.0);
    let m8 = Machine::new(8, 10.0, 100.0).with_c2(2.0);
    let mut scenarios = Vec::new();
    for &w in &[0.0, 64.0, 512.0, 2048.0] {
        scenarios.push(Scenario::AllToAll { machine: m32, w });
        scenarios.push(Scenario::SharedMemory {
            machine: m16,
            w: w + 100.0,
        });
    }
    for &ps in &[1usize, 3, 8] {
        scenarios.push(Scenario::ClientServer {
            machine: m16,
            w: 1000.0,
            ps: Some(ps),
        });
    }
    scenarios.push(Scenario::ClientServer {
        machine: m32,
        w: 700.0,
        ps: None,
    });
    for &k in &[1u32, 2, 4, 7] {
        scenarios.push(Scenario::ForkJoin {
            machine: m32,
            w: 2000.0,
            k,
        });
    }
    scenarios.push(Scenario::General(GeneralModel::homogeneous_all_to_all(
        m8, 300.0,
    )));
    scenarios.push(Scenario::General(GeneralModel::client_server(m8, 500.0, 2)));
    scenarios.push(Scenario::General(GeneralModel::multi_hop(m8, 400.0, 3)));
    scenarios.push(Scenario::General(
        GeneralModel::homogeneous_all_to_all(m16, 250.0).with_protocol_processor(),
    ));
    scenarios
}

#[test]
fn service_answers_equal_library_answers() {
    let scenarios = mixed_scenarios();
    assert!(
        scenarios.len() >= 20,
        "acceptance requires >= 20 mixed scenarios, have {}",
        scenarios.len()
    );
    let library: Vec<Prediction> = scenarios
        .iter()
        .map(|s| lopc::model::scenario::solve(s).expect("library solve"))
        .collect();

    let server = start(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Single-request path.
    for (s, lib) in scenarios.iter().zip(&library) {
        let served = client.predict(s).expect("predict");
        assert!(
            predictions_identical(&served, lib),
            "{}: served {served:?} != library {lib:?}",
            s.kind()
        );
    }

    // Batch path: same scenarios in one request — answered from the cache
    // now, still identical (the cache stores exact solves).
    let batch = client.predict_batch(&scenarios).expect("batch");
    assert_eq!(batch.len(), library.len());
    for ((s, lib), served) in scenarios.iter().zip(&library).zip(&batch) {
        assert!(
            predictions_identical(served, lib),
            "batch {}: served {served:?} != library {lib:?}",
            s.kind()
        );
    }
    assert!(
        server.service().cache().hits() >= scenarios.len() as u64,
        "the batch repeats must have been cache hits"
    );
    server.shutdown();
}

/// The same contract through the cluster tier: a 3-node ring behind the
/// routing [`ClusterClient`] answers the same mixed population — singles
/// routed lane by lane, the batch fanned out per owner and reassembled in
/// order — bit-identically to direct library calls. Sharding must never
/// show up in the numbers.
#[test]
fn cluster_routed_answers_equal_library_answers() {
    let scenarios = mixed_scenarios();
    let library: Vec<Prediction> = scenarios
        .iter()
        .map(|s| lopc::model::scenario::solve(s).expect("library solve"))
        .collect();

    // Bind all three listeners first, then start each node knowing the
    // other two (ephemeral ports are only known after binding).
    let listeners: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let nodes: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            start_on(
                listener,
                ServerConfig {
                    workers: 2,
                    peers,
                    advertise: Some(addrs[i].clone()),
                    ..ServerConfig::default()
                },
            )
            .expect("start node")
        })
        .collect();

    let client = ClusterClient::connect(nodes[0].addr()).expect("cluster connect");
    assert_eq!(client.members().len(), 3, "topology must list all nodes");

    for (s, lib) in scenarios.iter().zip(&library) {
        let served = client.predict(s).expect("routed predict");
        assert!(
            predictions_identical(&served, lib),
            "{}: routed {served:?} != library {lib:?}",
            s.kind()
        );
    }

    let batch = client.predict_batch(&scenarios).expect("routed batch");
    assert_eq!(batch.len(), library.len());
    for ((s, lib), served) in scenarios.iter().zip(&library).zip(&batch) {
        assert!(
            predictions_identical(served, lib),
            "routed batch {}: served {served:?} != library {lib:?}",
            s.kind()
        );
    }

    for handle in nodes {
        handle.shutdown();
    }
}
