//! §6 end-to-end: the work-pile optimum, the shape of the throughput curve,
//! and the paper's conservatism claim, simulator-validated.

use lopc::prelude::*;

const MACHINE_P: usize = 16;

fn machine() -> Machine {
    Machine::new(MACHINE_P, 50.0, 131.0).with_c2(0.0)
}

fn sim_throughput(ps: usize, w: f64, seed: u64) -> f64 {
    let wl = Workpile::new(machine(), w, ps).with_window(Window::quick());
    lopc::sim::run(&wl.sim_config(seed))
        .unwrap()
        .aggregate
        .throughput
}

#[test]
fn simulated_curve_is_unimodal_and_peaks_at_prediction() {
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    let predicted = model.optimal_servers().unwrap();

    let xs: Vec<f64> = (1..MACHINE_P).map(|ps| sim_throughput(ps, w, 55)).collect();
    let argmax = xs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0
        + 1;
    assert!(
        (argmax as i64 - predicted as i64).abs() <= 1,
        "sim argmax {argmax} vs eq. 6.8 {predicted}"
    );
    // Rough unimodality: throughput at the edges below the peak.
    let peak = xs[argmax - 1];
    assert!(xs[0] < peak);
    assert!(xs[xs.len() - 1] < peak);
}

#[test]
fn model_is_conservative_like_the_paper_says() {
    // Paper: "in the worst case LoPC predicts a value that is conservative
    // by 3%". With short windows we allow 6 % of under-prediction and no
    // more than ~5 % of over-prediction.
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    for ps in [2usize, 4, 6, 8, 12] {
        let x_model = model.throughput(ps).unwrap().x;
        let x_sim = sim_throughput(ps, w, 77);
        let err = (x_model - x_sim) / x_sim;
        assert!(
            (-0.08..=0.05).contains(&err),
            "ps={ps}: model {x_model} vs sim {x_sim} ({:+.1}%)",
            err * 100.0
        );
    }
}

#[test]
fn queue_length_one_at_simulated_optimum() {
    // The §6 optimality criterion: mean customers per server ≈ 1 at the
    // optimal split.
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    let ps = model.optimal_servers().unwrap();
    let wl = Workpile::new(machine(), w, ps).with_window(Window::quick());
    let report = lopc::sim::run(&wl.sim_config(91)).unwrap();
    // Mean request population over the server nodes.
    let qs: f64 = report.nodes[..ps].iter().map(|n| n.qq).sum::<f64>() / ps as f64;
    assert!(
        (0.6..=1.6).contains(&qs),
        "mean server queue at optimum should be ~1, got {qs}"
    );
}

#[test]
fn optimum_moves_as_the_model_predicts() {
    // Heavier chunks -> fewer servers; costlier handlers -> more servers.
    let base = ClientServer::new(machine(), 1000.0).optimal_servers_continuous();
    let heavy_chunks = ClientServer::new(machine(), 4000.0).optimal_servers_continuous();
    let heavy_handlers =
        ClientServer::new(Machine::new(MACHINE_P, 50.0, 400.0).with_c2(0.0), 1000.0)
            .optimal_servers_continuous();
    assert!(heavy_chunks < base);
    assert!(heavy_handlers > base);
}

#[test]
fn logp_bounds_envelope_simulation() {
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    for ps in [1usize, 4, 10, 14] {
        let x = sim_throughput(ps, w, 101);
        assert!(
            x <= model.logp_server_bound(ps) * 1.02,
            "server bound, ps={ps}"
        );
        assert!(
            x <= model.logp_client_bound(ps) * 1.05,
            "client bound, ps={ps}"
        );
    }
}

#[test]
fn exponential_handlers_need_more_servers() {
    // eq. 6.8 via C²: the optimum grows with handler variability, and the
    // simulator agrees directionally.
    let w = 600.0;
    let m0 = machine();
    let m1 = machine().with_c2(1.0);
    let p0 = ClientServer::new(m0, w).optimal_servers_continuous();
    let p1 = ClientServer::new(m1, w).optimal_servers_continuous();
    assert!(p1 > p0);

    // Direct sim comparison at a split between the two optima: the
    // exponential-handler machine loses more throughput to queueing.
    let ps = p0.round() as usize;
    let x0 = sim_throughput(ps, w, 33);
    let wl1 = Workpile::new(m1, w, ps).with_window(Window::quick());
    let x1 = lopc::sim::run(&wl1.sim_config(33))
        .unwrap()
        .aggregate
        .throughput;
    assert!(
        x1 < x0 * 1.02,
        "more variable handlers cannot help: {x1} vs {x0}"
    );
}
