//! §6 end-to-end: the work-pile optimum, the shape of the throughput curve,
//! and the paper's conservatism claim, simulator-validated through the
//! replication CI harness (DESIGN.md §8). No seed is special: base seeds
//! are arbitrary and CI rotates them via `LOPC_TEST_SEED_OFFSET`.

use lopc::prelude::*;

const MACHINE_P: usize = 16;

fn machine() -> Machine {
    Machine::new(MACHINE_P, 50.0, 131.0).with_c2(0.0)
}

fn workpile(ps: usize, w: f64) -> Workpile {
    Workpile::new(machine(), w, ps).with_window(Window::quick())
}

/// Replicated throughput summary at one server split.
fn sim_throughput(ps: usize, w: f64, base_seed: u64) -> Summary {
    let mut cfg = workpile(ps, w).sim_config(base_seed);
    cfg.seed = test_seed(cfg.seed);
    let reps =
        run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.throughput).unwrap();
    reps.summary(|r| r.aggregate.throughput)
}

#[test]
fn simulated_curve_is_unimodal_and_peaks_at_prediction() {
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    let predicted = model.optimal_servers().unwrap();

    let xs: Vec<Summary> = (1..MACHINE_P).map(|ps| sim_throughput(ps, w, 55)).collect();
    let argmax = xs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.mean.total_cmp(&b.1.mean))
        .unwrap()
        .0
        + 1;
    assert!(
        (argmax as i64 - predicted as i64).abs() <= 1,
        "sim argmax {argmax} vs eq. 6.8 {predicted}"
    );
    // Rough unimodality, interval-aware: the edge CIs must sit below the
    // peak's CI.
    let peak = &xs[argmax - 1];
    let peak_lo = peak.ci(Confidence::P95).0;
    assert!(
        xs[0].ci(Confidence::P95).1 < peak_lo,
        "left edge must be significantly below the peak"
    );
    assert!(
        xs[xs.len() - 1].ci(Confidence::P95).1 < peak_lo,
        "right edge must be significantly below the peak"
    );
}

#[test]
fn model_is_conservative_like_the_paper_says() {
    // Paper: "in the worst case LoPC predicts a value that is conservative
    // by 3%". With short windows we allow ~8 % of under-prediction
    // (measurement above the model) and ~5 % of over-prediction — as an
    // asymmetric band on the replication interval.
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    for ps in [2usize, 4, 6, 8, 12] {
        let x_model = model.throughput(ps).unwrap().x;
        assert_model_matches_sim(
            &format!("work-pile conservatism, ps={ps}"),
            &workpile(ps, w).sim_config(77),
            x_model,
            |r| r.aggregate.throughput,
            // below: measurement under the prediction (model optimistic) —
            // the direction the paper bounds tightly; above: measurement
            // over the prediction (model conservative).
            &Validation::band(0.05, 0.09),
        );
    }
}

#[test]
fn queue_length_one_at_simulated_optimum() {
    // The §6 optimality criterion: mean customers per server ≈ 1 at the
    // optimal split.
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    let ps = model.optimal_servers().unwrap();
    let mut cfg = workpile(ps, w).sim_config(91);
    cfg.seed = test_seed(cfg.seed);
    let reps = run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.mean_r).unwrap();
    // Mean request population over the server nodes, as a replication CI.
    let qs = reps.summary(|r| r.nodes[..ps].iter().map(|n| n.qq).sum::<f64>() / ps as f64);
    let (lo, hi) = qs.ci(Confidence::P95);
    assert!(
        lo > 0.6 && hi < 1.6,
        "mean server queue at optimum should be ~1, CI [{lo:.3}, {hi:.3}] over {} reps",
        qs.n
    );
}

#[test]
fn optimum_moves_as_the_model_predicts() {
    // Heavier chunks -> fewer servers; costlier handlers -> more servers.
    let base = ClientServer::new(machine(), 1000.0).optimal_servers_continuous();
    let heavy_chunks = ClientServer::new(machine(), 4000.0).optimal_servers_continuous();
    let heavy_handlers =
        ClientServer::new(Machine::new(MACHINE_P, 50.0, 400.0).with_c2(0.0), 1000.0)
            .optimal_servers_continuous();
    assert!(heavy_chunks < base);
    assert!(heavy_handlers > base);
}

#[test]
fn logp_bounds_envelope_simulation() {
    let w = 1000.0;
    let model = ClientServer::new(machine(), w);
    for ps in [1usize, 4, 10, 14] {
        let x = sim_throughput(ps, w, 101);
        // One-sided claims: the replicated mean (not one seed's draw) stays
        // under each LogP bound, with the CI half-width as statistical slack.
        let hw = x.half_width(Confidence::P95);
        assert!(
            x.mean <= model.logp_server_bound(ps) * 1.02 + hw,
            "server bound, ps={ps}: mean {} vs bound {}",
            x.mean,
            model.logp_server_bound(ps)
        );
        assert!(
            x.mean <= model.logp_client_bound(ps) * 1.05 + hw,
            "client bound, ps={ps}: mean {} vs bound {}",
            x.mean,
            model.logp_client_bound(ps)
        );
    }
}

#[test]
fn exponential_handlers_need_more_servers() {
    // eq. 6.8 via C²: the optimum grows with handler variability, and the
    // simulator agrees directionally.
    let w = 600.0;
    let m0 = machine();
    let m1 = machine().with_c2(1.0);
    let p0 = ClientServer::new(m0, w).optimal_servers_continuous();
    let p1 = ClientServer::new(m1, w).optimal_servers_continuous();
    assert!(p1 > p0);

    // Direct sim comparison at a split between the two optima, under
    // common random numbers driven by the *paired* sequential stopping
    // rule: both systems replicate with identical seeds until the paired-t
    // interval of the throughput difference excludes zero (variability
    // hurts, significantly) or resolves it as negligible — no fixed
    // replication count to tune. Claim: more variable handlers cannot
    // *help* throughput.
    let ps = p0.round() as usize;
    let mut cfg0 = Workpile::new(m0, w, ps)
        .with_window(Window::quick())
        .sim_config(33);
    cfg0.seed = test_seed(cfg0.seed);
    let mut cfg1 = Workpile::new(m1, w, ps)
        .with_window(Window::quick())
        .sim_config(33);
    cfg1.seed = cfg0.seed;
    let rule = StoppingRule::default().with_reps(5, 16);
    let (r1, r0, outcome) =
        run_paired_until(&cfg1, &cfg0, &rule, |r| r.aggregate.throughput).unwrap();
    assert_eq!(r0.reports.len(), r1.reports.len());
    // The CRN diff summary equals what the manual pairing would compute.
    let diff = paired_diff_summary(
        &r1.samples(|r| r.aggregate.throughput),
        &r0.samples(|r| r.aggregate.throughput),
    ); // exponential minus constant
    assert_eq!(outcome.summary.mean, diff.mean);
    let (_, hi) = diff.ci(Confidence::P95);
    let x0_mean = r0.summary(|r| r.aggregate.throughput).mean;
    assert!(
        hi < 0.02 * x0_mean,
        "more variable handlers cannot help: diff CI upper {hi} vs mean {x0_mean} ({} reps)",
        diff.n
    );
    // If the procedure called the comparison significant, the sign must be
    // the modelled one (exponential strictly worse).
    if outcome.excludes_zero(rule.confidence) {
        assert!(outcome.summary.mean < 0.0, "{:?}", outcome.summary);
    }
}
