//! Heterogeneous workloads: different threads doing different amounts of
//! work — the per-thread generality of Appendix A that neither the §5 nor
//! the §6 special case covers, validated against the simulator.

use lopc::prelude::*;
use lopc_dist::ServiceTime;

/// Build a machine-wide config where even nodes do `w_fast` work and odd
/// nodes `w_slow`, all requesting uniformly.
fn mixed_sim(p: usize, st: f64, so: f64, w_fast: f64, w_slow: f64, seed: u64) -> SimConfig {
    let handler = ServiceTime::constant(so);
    let threads = (0..p)
        .map(|k| ThreadSpec {
            work: Some(ServiceTime::constant(if k % 2 == 0 {
                w_fast
            } else {
                w_slow
            })),
            dest: DestChooser::UniformOther,
            hops: 1,
            fanout: 1,
        })
        .collect();
    SimConfig {
        p,
        net_latency: st,
        request_handler: handler.clone(),
        reply_handler: handler,
        threads,
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::Horizon {
            warmup: 60_000.0,
            end: 400_000.0,
        },
        seed,
    }
}

fn mixed_model(p: usize, st: f64, so: f64, w_fast: f64, w_slow: f64) -> GeneralModel {
    let machine = Machine::new(p, st, so).with_c2(0.0);
    let mut model = GeneralModel::homogeneous_all_to_all(machine, 0.0);
    for (k, w) in model.w.iter_mut().enumerate() {
        *w = Some(if k % 2 == 0 { w_fast } else { w_slow });
    }
    model
}

#[test]
fn per_thread_response_times_match_sim() {
    let (p, st, so) = (16usize, 25.0, 150.0);
    let (w_fast, w_slow) = (400.0, 2400.0);
    let sol = mixed_model(p, st, so, w_fast, w_slow).solve().unwrap();
    let report = lopc::sim::run(&mixed_sim(p, st, so, w_fast, w_slow, 13)).unwrap();

    for k in 0..p {
        let model_r = sol.r[k];
        let sim_r = report.nodes[k].mean_r;
        let err = (model_r - sim_r).abs() / sim_r;
        assert!(
            err < 0.08,
            "node {k}: model {model_r:.0} vs sim {sim_r:.0} ({:.1}%)",
            err * 100.0
        );
    }
    // Fast threads cycle faster...
    assert!(sol.r[0] < sol.r[1]);
    assert!(report.nodes[0].mean_r < report.nodes[1].mean_r);
    // ...and issue proportionally more requests.
    let x_fast = report.nodes[0].cycles as f64;
    let x_slow = report.nodes[1].cycles as f64;
    assert!(
        x_fast / x_slow > 1.5,
        "fast thread should complete many more cycles: {x_fast} vs {x_slow}"
    );
}

#[test]
fn slow_threads_absorb_more_absolute_contention() {
    // BKT interference scales with the compute phase: a thread that works
    // longer is interrupted more often, so its *absolute* contention is
    // larger even though the interrupt rate is machine-wide uniform. The
    // simulator shows the same asymmetry.
    let (p, st, so) = (16usize, 25.0, 150.0);
    let sol = mixed_model(p, st, so, 400.0, 2400.0).solve().unwrap();
    let machine = Machine::new(p, st, so).with_c2(0.0);
    let c_fast = sol.r[0] - machine.contention_free_response(400.0);
    let c_slow = sol.r[1] - machine.contention_free_response(2400.0);
    assert!(c_fast > 0.0 && c_slow > 0.0);
    assert!(
        c_slow > 1.5 * c_fast,
        "model contention: fast {c_fast:.0} vs slow {c_slow:.0}"
    );

    let report = lopc::sim::run(&mixed_sim(p, st, so, 400.0, 2400.0, 21)).unwrap();
    let s_fast = report.nodes[0].mean_r - machine.contention_free_response(400.0);
    let s_slow = report.nodes[1].mean_r - machine.contention_free_response(2400.0);
    assert!(
        s_slow > 1.5 * s_fast,
        "sim contention: fast {s_fast:.0} vs slow {s_slow:.0}"
    );
}

#[test]
fn aggregate_rates_conserve() {
    // Little's law across the mixed system: per-node request arrival rate
    // equals the sum of the senders' throughput shares, measured and
    // modelled.
    let (p, st, so) = (8usize, 10.0, 100.0);
    let sol = mixed_model(p, st, so, 300.0, 900.0).solve().unwrap();
    let report = lopc::sim::run(&mixed_sim(p, st, so, 300.0, 900.0, 5)).unwrap();

    let x_total_model: f64 = sol.x.iter().sum();
    let x_total_sim = report.aggregate.throughput;
    assert!(
        (x_total_model - x_total_sim).abs() / x_total_sim < 0.06,
        "system throughput: model {x_total_model} vs sim {x_total_sim}"
    );

    // Uq at each node ~ So * (total rate)/P by symmetry of destinations.
    let uq_expected = so * x_total_model / p as f64;
    for k in 0..p {
        assert!(
            (sol.uq[k] - uq_expected).abs() < 0.05,
            "node {k} Uq {} vs expected {uq_expected}",
            sol.uq[k]
        );
        assert!(
            (report.nodes[k].uq - uq_expected).abs() < 0.05,
            "sim node {k} Uq {}",
            report.nodes[k].uq
        );
    }
}
