//! Heterogeneous workloads: different threads doing different amounts of
//! work — the per-thread generality of Appendix A that neither the §5 nor
//! the §6 special case covers, validated against the simulator through the
//! replication CI harness (DESIGN.md §8): every claim is judged on a
//! confidence interval over independent replications, never on one seed.

use lopc::prelude::*;
use lopc_dist::ServiceTime;

/// Build a machine-wide config where even nodes do `w_fast` work and odd
/// nodes `w_slow`, all requesting uniformly.
fn mixed_sim(p: usize, st: f64, so: f64, w_fast: f64, w_slow: f64, seed: u64) -> SimConfig {
    let handler = ServiceTime::constant(so);
    let threads = (0..p)
        .map(|k| ThreadSpec {
            work: Some(ServiceTime::constant(if k % 2 == 0 {
                w_fast
            } else {
                w_slow
            })),
            dest: DestChooser::UniformOther,
            hops: 1,
            fanout: 1,
        })
        .collect();
    SimConfig {
        p,
        net_latency: st,
        request_handler: handler.clone(),
        reply_handler: handler,
        threads,
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::Horizon {
            warmup: 60_000.0,
            end: 400_000.0,
        },
        seed,
    }
}

fn mixed_model(p: usize, st: f64, so: f64, w_fast: f64, w_slow: f64) -> GeneralModel {
    let machine = Machine::new(p, st, so).with_c2(0.0);
    let mut model = GeneralModel::homogeneous_all_to_all(machine, 0.0);
    for (k, w) in model.w.iter_mut().enumerate() {
        *w = Some(if k % 2 == 0 { w_fast } else { w_slow });
    }
    model
}

#[test]
fn per_thread_response_times_match_sim() {
    let (p, st, so) = (16usize, 25.0, 150.0);
    let (w_fast, w_slow) = (400.0, 2400.0);
    let sol = mixed_model(p, st, so, w_fast, w_slow).solve().unwrap();
    let cfg = mixed_sim(p, st, so, w_fast, w_slow, 13);

    // One replication set drives the aggregate check and all 16 per-node
    // checks: per-node means are noisier than the pooled mean, so they get
    // a slightly wider margin at the same confidence. The simulator pools
    // per-*cycle* response samples, so the model-side pooled prediction is
    // the throughput-weighted mean of the per-node responses (fast threads
    // contribute proportionally more cycles).
    let x_total: f64 = sol.x.iter().sum();
    let pooled_r: f64 = sol.r.iter().zip(&sol.x).map(|(r, x)| r * x).sum::<f64>() / x_total;
    let v = Validation::equivalence(0.08);
    let reps = assert_model_matches_sim(
        "mixed workload aggregate R",
        &cfg,
        pooled_r,
        |r| r.aggregate.mean_r,
        &v,
    );
    let per_node = Validation::equivalence(0.10);
    for k in 0..p {
        let report = per_node.check_stat(&reps, sol.r[k], |r| r.nodes[k].mean_r);
        assert!(report.passed, "node {k}: {report}");
    }

    // Fast threads cycle faster...
    assert!(sol.r[0] < sol.r[1]);
    let fast_r = reps.summary(|r| r.nodes[0].mean_r);
    let slow_r = reps.summary(|r| r.nodes[1].mean_r);
    assert!(
        fast_r.mean + fast_r.half_width(Confidence::P95)
            < slow_r.mean - slow_r.half_width(Confidence::P95),
        "fast-node R must be significantly below slow-node R"
    );
    // ...and issue proportionally more requests.
    let ratio = reps.summary(|r| r.nodes[0].cycles as f64 / r.nodes[1].cycles as f64);
    assert!(
        ratio.mean - ratio.half_width(Confidence::P95) > 1.5,
        "fast thread should complete many more cycles: ratio CI {:?}",
        ratio.ci(Confidence::P95)
    );
}

#[test]
fn slow_threads_absorb_more_absolute_contention() {
    // BKT interference scales with the compute phase: a thread that works
    // longer is interrupted more often, so its *absolute* contention is
    // larger even though the interrupt rate is machine-wide uniform. The
    // simulator shows the same asymmetry.
    let (p, st, so) = (16usize, 25.0, 150.0);
    let sol = mixed_model(p, st, so, 400.0, 2400.0).solve().unwrap();
    let machine = Machine::new(p, st, so).with_c2(0.0);
    let c_fast = sol.r[0] - machine.contention_free_response(400.0);
    let c_slow = sol.r[1] - machine.contention_free_response(2400.0);
    assert!(c_fast > 0.0 && c_slow > 0.0);
    assert!(
        c_slow > 1.5 * c_fast,
        "model contention: fast {c_fast:.0} vs slow {c_slow:.0}"
    );

    let mut cfg = mixed_sim(p, st, so, 400.0, 2400.0, 21);
    cfg.seed = test_seed(cfg.seed);
    let reps = run_until_precision(&cfg, &StoppingRule::default(), |r| r.aggregate.mean_r).unwrap();
    // The contention ratio per replication; its lower confidence bound must
    // clear the same 1.5× the model shows.
    let ratio = reps.summary(|r| {
        let s_fast = r.nodes[0].mean_r - machine.contention_free_response(400.0);
        let s_slow = r.nodes[1].mean_r - machine.contention_free_response(2400.0);
        s_slow / s_fast
    });
    assert!(
        ratio.mean - ratio.half_width(Confidence::P95) > 1.5,
        "sim contention ratio CI {:?} must sit above 1.5",
        ratio.ci(Confidence::P95)
    );
}

#[test]
fn aggregate_rates_conserve() {
    // Little's law across the mixed system: per-node request arrival rate
    // equals the sum of the senders' throughput shares, measured and
    // modelled.
    let (p, st, so) = (8usize, 10.0, 100.0);
    let sol = mixed_model(p, st, so, 300.0, 900.0).solve().unwrap();
    let x_total_model: f64 = sol.x.iter().sum();

    let v = Validation::equivalence(0.06);
    let reps = assert_model_matches_sim(
        "mixed system throughput",
        &mixed_sim(p, st, so, 300.0, 900.0, 5),
        x_total_model,
        |r| r.aggregate.throughput,
        &v,
    );

    // Uq at each node ~ So * (total rate)/P by symmetry of destinations.
    let uq_expected = so * x_total_model / p as f64;
    let uq = Validation::abs_equivalence(0.05);
    for k in 0..p {
        assert!(
            (sol.uq[k] - uq_expected).abs() < 0.05,
            "node {k} Uq {} vs expected {uq_expected}",
            sol.uq[k]
        );
        let report = uq.check_stat(&reps, uq_expected, |r| r.nodes[k].uq);
        assert!(report.passed, "sim node {k} Uq: {report}");
    }
}
