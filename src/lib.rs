//! **LoPC** — *LogP + Contention*: an analytical performance model for
//! fine-grain message-passing parallel programs, with the event-driven
//! simulator used to validate it.
//!
//! This is a from-scratch reproduction of
//! *LoPC: Modeling Contention in Parallel Algorithms* (Matthew Frank, MIT,
//! 1997; PPoPP 1997 with Agarwal and Vernon). The crate is an umbrella that
//! re-exports the workspace:
//!
//! * [`model`] (`lopc-core`) — the LoPC model: [`model::AllToAll`] (§5
//!   closed form with the eq. 5.12 bounds), [`model::ClientServer`] (§6
//!   optimal server allocation), [`model::GeneralModel`] (Appendix A AMVA),
//!   and the [`model::LogPParams`] contention-free baseline;
//! * [`sim`] (`lopc-sim`) — the Active-Message multiprocessor simulator
//!   (atomic handlers, interrupt priority, FIFO queues, contention-free
//!   network, protocol-processor variant);
//! * [`workloads`] (`lopc-workloads`) — parameterisations that drive model
//!   and simulator identically (matrix–vector multiply, all-to-all,
//!   work-pile, multi-hop, hotspot);
//! * [`dist`] (`lopc-dist`) — service-time distributions by `(mean, C²)`;
//! * [`solver`] (`lopc-solver`) — bisection / damped fixed-point iteration;
//! * [`report`] (`lopc-report`) — figures, tables, CSV, comparisons;
//! * [`serve`] (`lopc-serve`) — the prediction service: HTTP endpoints over
//!   the unified [`model::Scenario`] API with a sharded solution cache.
//!
//! # Example: predict and validate in five lines
//!
//! ```
//! use lopc::prelude::*;
//!
//! let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
//! let workload = AllToAllWorkload::new(machine, 1000.0);
//! let predicted = workload.model().solve().unwrap().r;
//! let measured = lopc::sim::run(&workload.sim_config(42)).unwrap().aggregate.mean_r;
//! assert!((predicted - measured).abs() / measured < 0.08);
//! ```

pub use lopc_core as model;
pub use lopc_dist as dist;
pub use lopc_report as report;
pub use lopc_serve as serve;
pub use lopc_sim as sim;
pub use lopc_solver as solver;
pub use lopc_stats as stats;
pub use lopc_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use lopc_core::{
        Algorithm, AllToAll, ClientServer, ForkJoin, GeneralModel, LogPParams, Machine, ModelError,
        Prediction, Scenario,
    };
    pub use lopc_dist::{from_mean_cv2, Distribution, ServiceTime};
    pub use lopc_report::{ComparisonTable, Figure, Series};
    pub use lopc_sim::validate::{assert_model_matches_sim, test_seed, Validation};
    pub use lopc_sim::{
        run, run_paired, run_paired_until, run_replications, run_traced, run_until_precision,
        DestChooser, SimConfig, StopCondition, ThreadSpec,
    };
    pub use lopc_stats::{
        batch_means, check_match, paired_diff_summary, Acceptance, Confidence, StoppingRule,
        Summary,
    };
    pub use lopc_workloads::{
        AllToAllWorkload, BulkSync, Forwarding, Hotspot, MatVec, Window, Workpile,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let m = Machine::new(4, 1.0, 1.0);
        let _ = AllToAll::new(m, 1.0);
        let _ = ServiceTime::constant(1.0);
    }
}
